#include "flodb/sync/rcu.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_set>
#include <vector>

#include "flodb/common/synchronization.h"
#include "flodb/sync/backoff.h"

#if defined(__SANITIZE_THREAD__)
#define FLODB_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLODB_TSAN 1
#endif
#endif

namespace flodb {

namespace {

// Registry of live Rcu instances, keyed by unique id. A thread releasing
// its cached slots at exit must not touch an Rcu that has already been
// destroyed; the registry makes release conditional on liveness.
Mutex g_registry_mu;
std::unordered_set<uint64_t>& LiveSet() {
  static std::unordered_set<uint64_t>* live = new std::unordered_set<uint64_t>();
  return *live;
}
std::atomic<uint64_t> g_next_id{1};

}  // namespace

struct Rcu::ThreadState {
  struct Entry {
    uint64_t id;
    Rcu* rcu;
    Slot* slot;
    int depth;
  };
  std::vector<Entry> entries;

  ~ThreadState() {
    MutexLock lock(g_registry_mu);
    for (const Entry& e : entries) {
      if (LiveSet().count(e.id) != 0) {
        e.slot->epoch.store(0, std::memory_order_release);
        e.slot->in_use.store(false, std::memory_order_release);
      }
    }
  }
};

Rcu::Rcu() : id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {
  MutexLock lock(g_registry_mu);
  LiveSet().insert(id_);
}

Rcu::~Rcu() {
  MutexLock lock(g_registry_mu);
  LiveSet().erase(id_);
}

Rcu::ThreadState& Rcu::LocalState() {
  static thread_local ThreadState state;
  return state;
}

Rcu::Slot* Rcu::AcquireSlot() {
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].in_use.load(std::memory_order_relaxed) &&
        slots_[i].in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      int hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 &&
             !high_water_.compare_exchange_weak(hw, i + 1, std::memory_order_acq_rel)) {
      }
      return &slots_[i];
    }
  }
  fprintf(stderr, "flodb: Rcu slot pool exhausted (> %d concurrent threads)\n", kMaxThreads);
  abort();
}

void Rcu::ReadLock() {
  ThreadState& ts = LocalState();
  ThreadState::Entry* entry = nullptr;
  for (ThreadState::Entry& e : ts.entries) {
    if (e.id == id_) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    Slot* slot = AcquireSlot();
    ts.entries.push_back(ThreadState::Entry{id_, this, slot, 0});
    entry = &ts.entries.back();
  }
  if (entry->depth++ == 0) {
    uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
    // Order the epoch announcement before any component-pointer load the
    // protected section performs (see Synchronize for the pairing).
#if defined(FLODB_TSAN)
    // TSan neither models fences nor compiles them warning-free under
    // gcc (-Wtsan); a seq_cst RMW provides the same StoreLoad ordering
    // and participates in the race detector's happens-before graph.
    entry->slot->epoch.exchange(epoch, std::memory_order_seq_cst);
#else
    entry->slot->epoch.store(epoch, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

void Rcu::ReadUnlock() {
  ThreadState& ts = LocalState();
  for (ThreadState::Entry& e : ts.entries) {
    if (e.id == id_) {
      if (--e.depth == 0) {
        e.slot->epoch.store(0, std::memory_order_release);
      }
      return;
    }
  }
  fprintf(stderr, "flodb: ReadUnlock without matching ReadLock\n");
  abort();
}

bool Rcu::InReadSection() const {
  const ThreadState& ts = const_cast<Rcu*>(this)->LocalState();
  for (const ThreadState::Entry& e : ts.entries) {
    if (e.id == id_) {
      return e.depth > 0;
    }
  }
  return false;
}

void Rcu::Synchronize() {
  // Establish the grace-period boundary: readers that entered at an epoch
  // below `target` must drain; readers entering afterwards observe the new
  // component pointers (the caller swapped them before calling us).
  const uint64_t target = global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  const int hw = high_water_.load(std::memory_order_acquire);
  for (int i = 0; i < hw; ++i) {
    Backoff backoff;
    while (true) {
      uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e == 0 || e >= target) {
        break;
      }
      backoff.Pause();
    }
  }
}

}  // namespace flodb
