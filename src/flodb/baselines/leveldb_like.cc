#include "flodb/baselines/leveldb_like.h"

namespace flodb {

Status OpenLevelDBLike(size_t memtable_bytes, const DiskOptions& disk,
                       std::unique_ptr<KVStore>* out) {
  BaselineOptions options;
  options.name = "LevelDB-like";
  options.concurrency = BaselineOptions::Concurrency::kLevelDB;
  options.memtable_kind = BaselineMemTable::Kind::kSkipList;
  options.memtable_bytes = memtable_bytes;
  options.disk = disk;
  options.disk.compaction_threads = 1;  // LevelDB: single-threaded compaction
  std::unique_ptr<BaselineStore> store;
  Status s = BaselineStore::Open(options, &store);
  *out = std::move(store);
  return s;
}

}  // namespace flodb
