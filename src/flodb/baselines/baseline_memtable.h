// BaselineMemTable: the single-level, MULTI-VERSIONED memory component
// used by the baseline stores (LevelDB-, HyperLevelDB-, RocksDB-like).
//
// Unlike FloDB's in-place Memtable, every update appends a new version —
// "multi-versioning is used by all existing LSMs" (§3.2). This is exactly
// what makes skewed workloads fill the memory component and trigger
// flushes (Figure 16 reproduces the contrast).
//
// Two data-structure kinds, mirroring §2.3:
//  * kSkipList — sorted; O(log n) inserts that slow down as the component
//    grows (Figure 3); flush is a direct sorted copy.
//  * kHashTable — O(1) inserts; flush must collect and SORT everything
//    (linearithmic), delaying writers when the active table fills while
//    the immutable one is still being sorted/persisted (Figure 4).
//
// Versioned ordering uses internal keys = user_key + big-endian(~seq),
// compared as TWO PARTS (user key bytewise, then the ~seq suffix, i.e.
// seq descending) via the skiplist's pluggable comparator — raw byte
// comparison would order variable-length user keys through the suffix
// ("x" vs "x\0y") incorrectly. Arbitrary user keys are supported, same
// as FloDB proper.

#ifndef FLODB_BASELINES_BASELINE_MEMTABLE_H_
#define FLODB_BASELINES_BASELINE_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flodb/common/arena.h"
#include "flodb/common/slice.h"
#include "flodb/disk/iterator.h"
#include "flodb/mem/skiplist.h"
#include "flodb/common/synchronization.h"

namespace flodb {

// internal key = user_key bytes + 8-byte big-endian ~seq.
void AppendInternalKey(std::string* dst, const Slice& user_key, uint64_t seq);
Slice ExtractUserKey(const Slice& internal_key);
uint64_t ExtractSeq(const Slice& internal_key);

// Two-part internal-key order: user keys bytewise ascending, then seq
// descending (the ~seq suffix compares bytewise). Total and consistent
// with byte equality, as the skiplist comparator contract requires.
int InternalKeyCompare(const Slice& a, const Slice& b);

class BaselineMemTable {
 public:
  enum class Kind { kSkipList, kHashTable };

  BaselineMemTable(Kind kind, size_t target_bytes);
  ~BaselineMemTable();

  BaselineMemTable(const BaselineMemTable&) = delete;
  BaselineMemTable& operator=(const BaselineMemTable&) = delete;

  // Appends a new version. Thread-safe.
  void Add(const Slice& key, const Slice& value, uint64_t seq, ValueType type);

  // Returns the newest version with seq <= snapshot_seq.
  bool Get(const Slice& key, uint64_t snapshot_seq, std::string* value, uint64_t* seq,
           ValueType* type) const;

  // All versions, ordered (user key asc, seq desc). For kHashTable this
  // COLLECTS AND SORTS the whole table — the linearithmic flush cost the
  // paper calls out (§2.3).
  std::unique_ptr<Iterator> NewSortedIterator() const;

  size_t ApproximateBytes() const;
  size_t Count() const;
  bool OverTarget() const { return ApproximateBytes() >= target_bytes_; }
  Kind kind() const { return kind_; }

 private:
  struct HashEntry {
    uint32_t key_size;
    uint32_t value_size;
    uint64_t seq;
    ValueType type;
    // key bytes then value bytes follow
    Slice key() const { return Slice(reinterpret_cast<const char*>(this + 1), key_size); }
    Slice value() const {
      return Slice(reinterpret_cast<const char*>(this + 1) + key_size, value_size);
    }
  };

  struct HashBucket {
    mutable SpinLock lock;
    std::vector<const HashEntry*> entries GUARDED_BY(lock);  // append order = oldest first
  };

  const Kind kind_;
  const size_t target_bytes_;
  mutable ConcurrentArena arena_;

  // kSkipList state.
  std::unique_ptr<ConcurrentSkipList> list_;

  // kHashTable state.
  std::vector<HashBucket> buckets_;
  std::atomic<size_t> hash_count_{0};
  std::atomic<size_t> hash_bytes_{0};
};

}  // namespace flodb

#endif  // FLODB_BASELINES_BASELINE_MEMTABLE_H_
