// LevelDB-like baseline: single-writer queue with a group-commit leader,
// global mutex bracketing every read (§2.2, "LevelDB"). Factory over
// BaselineStore, which carries the full v2 KVStore surface: WriteBatch
// commits funnel through the leader queue entry by entry, and streaming
// ScanIterators resolve to chunked snapshot scans.

#ifndef FLODB_BASELINES_LEVELDB_LIKE_H_
#define FLODB_BASELINES_LEVELDB_LIKE_H_

#include <memory>

#include "flodb/baselines/baseline_store.h"

namespace flodb {

// memtable_bytes: single-level memory component size.
Status OpenLevelDBLike(size_t memtable_bytes, const DiskOptions& disk,
                       std::unique_ptr<KVStore>* out);

}  // namespace flodb

#endif  // FLODB_BASELINES_LEVELDB_LIKE_H_
