#include "flodb/baselines/baseline_memtable.h"

#include <algorithm>
#include <cstring>

#include "flodb/common/hash.h"

namespace flodb {

void AppendInternalKey(std::string* dst, const Slice& user_key, uint64_t seq) {
  dst->append(user_key.data(), user_key.size());
  const uint64_t inv = ~seq;
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((inv >> (8 * i)) & 0xff));
  }
}

Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

uint64_t ExtractSeq(const Slice& internal_key) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(internal_key.data() + internal_key.size() - 8);
  uint64_t inv = 0;
  for (int i = 0; i < 8; ++i) {
    inv = (inv << 8) | p[i];
  }
  return ~inv;
}

int InternalKeyCompare(const Slice& a, const Slice& b) {
  if (a.size() < 8 || b.size() < 8) {
    // Sentinel keys (the skiplist head's empty key) have no suffix.
    return a.compare(b);
  }
  const int c = ExtractUserKey(a).compare(ExtractUserKey(b));
  if (c != 0) {
    return c;
  }
  return memcmp(a.data() + a.size() - 8, b.data() + b.size() - 8, 8);
}

namespace {

constexpr size_t kHashBuckets = 1 << 14;

// Iterates (internal-key) skiplist nodes, exposing user keys and seqs.
class InternalSkipListIterator final : public Iterator {
 public:
  explicit InternalSkipListIterator(const ConcurrentSkipList* list) : iter_(list) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override {
    // First internal key with user_key >= target: suffix of eight 0x00
    // bytes sorts before every real (~seq) suffix of the same user key.
    std::string internal(target.data(), target.size());
    internal.append(8, '\0');
    iter_.Seek(Slice(internal));
  }
  void Next() override { iter_.Next(); }

  Slice key() const override { return ExtractUserKey(iter_.key()); }
  Slice value() const override { return iter_.value(); }
  uint64_t seq() const override { return iter_.seq(); }
  ValueType type() const override { return iter_.type(); }

 private:
  ConcurrentSkipList::Iterator iter_;
};

}  // namespace

BaselineMemTable::BaselineMemTable(Kind kind, size_t target_bytes)
    : kind_(kind), target_bytes_(target_bytes), arena_(256u << 10) {
  if (kind_ == Kind::kSkipList) {
    list_ = std::make_unique<ConcurrentSkipList>(&arena_, 0x5eed, &InternalKeyCompare);
  } else {
    buckets_ = std::vector<HashBucket>(kHashBuckets);
  }
}

BaselineMemTable::~BaselineMemTable() = default;

void BaselineMemTable::Add(const Slice& key, const Slice& value, uint64_t seq, ValueType type) {
  if (kind_ == Kind::kSkipList) {
    std::string internal;
    internal.reserve(key.size() + 8);
    AppendInternalKey(&internal, key, seq);
    list_->Insert(Slice(internal), value, seq, type);
    return;
  }
  char* mem = arena_.Allocate(sizeof(HashEntry) + key.size() + value.size());
  auto* entry = new (mem) HashEntry;
  entry->key_size = static_cast<uint32_t>(key.size());
  entry->value_size = static_cast<uint32_t>(value.size());
  entry->seq = seq;
  entry->type = type;
  memcpy(mem + sizeof(HashEntry), key.data(), key.size());
  memcpy(mem + sizeof(HashEntry) + key.size(), value.data(), value.size());

  HashBucket& bucket = buckets_[Hash64(key, 0xba5e11) & (kHashBuckets - 1)];
  {
    SpinLockHolder guard(bucket.lock);
    bucket.entries.push_back(entry);
  }
  hash_count_.fetch_add(1, std::memory_order_relaxed);
  hash_bytes_.fetch_add(sizeof(HashEntry) + key.size() + value.size() + sizeof(void*),
                        std::memory_order_relaxed);
}

bool BaselineMemTable::Get(const Slice& key, uint64_t snapshot_seq, std::string* value,
                           uint64_t* seq, ValueType* type) const {
  if (kind_ == Kind::kSkipList) {
    // Seek to user_key @ snapshot: internal suffix ~snapshot lands on the
    // newest version with seq <= snapshot.
    std::string target;
    target.reserve(key.size() + 8);
    AppendInternalKey(&target, key, snapshot_seq);
    ConcurrentSkipList::Iterator iter(list_.get());
    iter.Seek(Slice(target));
    if (!iter.Valid() || ExtractUserKey(iter.key()) != key) {
      return false;
    }
    if (value != nullptr) {
      value->assign(iter.value().data(), iter.value().size());
    }
    if (seq != nullptr) {
      *seq = iter.seq();
    }
    if (type != nullptr) {
      *type = iter.type();
    }
    return true;
  }

  const HashBucket& bucket = buckets_[Hash64(key, 0xba5e11) & (kHashBuckets - 1)];
  SpinLockHolder guard(bucket.lock);
  // Newest versions were appended last; scan backwards.
  for (auto it = bucket.entries.rbegin(); it != bucket.entries.rend(); ++it) {
    const HashEntry* entry = *it;
    if (entry->seq <= snapshot_seq && entry->key() == key) {
      if (value != nullptr) {
        value->assign(entry->value().data(), entry->value().size());
      }
      if (seq != nullptr) {
        *seq = entry->seq;
      }
      if (type != nullptr) {
        *type = entry->type;
      }
      return true;
    }
  }
  return false;
}

namespace {

// Owns a sorted snapshot of hash-table entries (the linearithmic step).
class SortedVectorIterator final : public Iterator {
 public:
  struct Item {
    std::string key;
    std::string value;
    uint64_t seq;
    ValueType type;
  };

  explicit SortedVectorIterator(std::vector<Item> items) : items_(std::move(items)) {}

  bool Valid() const override { return pos_ < items_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void Seek(const Slice& target) override {
    // First item with key >= target.
    size_t lo = 0, hi = items_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (Slice(items_[mid].key).compare(target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos_ = lo;
  }
  void Next() override { ++pos_; }

  Slice key() const override { return Slice(items_[pos_].key); }
  Slice value() const override { return Slice(items_[pos_].value); }
  uint64_t seq() const override { return items_[pos_].seq; }
  ValueType type() const override { return items_[pos_].type; }

 private:
  std::vector<Item> items_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Iterator> BaselineMemTable::NewSortedIterator() const {
  if (kind_ == Kind::kSkipList) {
    return std::make_unique<InternalSkipListIterator>(list_.get());
  }
  // Hash table: collect every version, then sort — O(n log n), the cost
  // the paper charges against hash-table memory components (§2.3).
  std::vector<SortedVectorIterator::Item> items;
  items.reserve(hash_count_.load(std::memory_order_relaxed));
  for (const HashBucket& bucket : buckets_) {
    SpinLockHolder guard(bucket.lock);
    for (const HashEntry* entry : bucket.entries) {
      items.push_back(SortedVectorIterator::Item{entry->key().ToString(),
                                                 entry->value().ToString(), entry->seq,
                                                 entry->type});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const SortedVectorIterator::Item& a, const SortedVectorIterator::Item& b) {
              const int cmp = Slice(a.key).compare(Slice(b.key));
              if (cmp != 0) {
                return cmp < 0;
              }
              return a.seq > b.seq;
            });
  return std::make_unique<SortedVectorIterator>(std::move(items));
}

size_t BaselineMemTable::ApproximateBytes() const {
  if (kind_ == Kind::kSkipList) {
    return arena_.AllocatedBytes();
  }
  return hash_bytes_.load(std::memory_order_relaxed);
}

size_t BaselineMemTable::Count() const {
  if (kind_ == Kind::kSkipList) {
    return list_->Count();
  }
  return hash_count_.load(std::memory_order_relaxed);
}

}  // namespace flodb
