#include "flodb/baselines/rocksdb_like.h"

namespace flodb {

Status OpenRocksDBLike(const RocksDBLikeConfig& config, const DiskOptions& disk,
                       std::unique_ptr<KVStore>* out) {
  BaselineOptions options;
  options.name = config.clsm_mode ? "RocksDB/cLSM-like" : "RocksDB-like";
  options.concurrency = config.clsm_mode ? BaselineOptions::Concurrency::kCLSM
                                         : BaselineOptions::Concurrency::kRocksDB;
  options.memtable_kind = config.memtable_kind;
  options.memtable_bytes = config.memtable_bytes;
  options.disk = disk;
  options.disk.compaction_threads = config.compaction_threads;
  std::unique_ptr<BaselineStore> store;
  Status s = BaselineStore::Open(options, &store);
  *out = std::move(store);
  return s;
}

}  // namespace flodb
