// HyperLevelDB-like baseline: concurrent memtable inserts, global mutex at
// the start and end of each write, in-order version publication (§2.2,
// "HyperLevelDB"). Factory over BaselineStore, which carries the full v2
// KVStore surface: each WriteBatch entry pays the bracketing mutexes and
// in-order publication individually — the contrast the batch benchmarks
// measure against FloDB's single-pass group commit.

#ifndef FLODB_BASELINES_HYPERLEVELDB_LIKE_H_
#define FLODB_BASELINES_HYPERLEVELDB_LIKE_H_

#include <memory>

#include "flodb/baselines/baseline_store.h"

namespace flodb {

Status OpenHyperLevelDBLike(size_t memtable_bytes, const DiskOptions& disk,
                            std::unique_ptr<KVStore>* out);

}  // namespace flodb

#endif  // FLODB_BASELINES_HYPERLEVELDB_LIKE_H_
