// BaselineStore: one engine, four synchronization designs — behavioural
// re-implementations of the systems FloDB is evaluated against (§2.2):
//
//  * kLevelDB       — single-writer design: writers deposit intended
//                     writes in a queue; the queue leader applies a group
//                     sequentially. Readers take the global mutex briefly
//                     at the START and END of every operation.
//  * kHyperLevelDB  — concurrent memtable inserts, but a global mutex at
//                     the start and end of each write plus IN-ORDER
//                     version publication (each writer waits for its
//                     predecessor's sequence number to commit).
//  * kRocksDB       — lock-free read path (no global mutex on Gets),
//                     single-writer group commit for writes, and
//                     MULTITHREADED compaction (disk.compaction_threads).
//                     memtable_kind selects skiplist (Fig 3) or hash
//                     table (Fig 4) memtables.
//  * kCLSM          — global shared-exclusive lock: all operations take
//                     it shared; memtable switches take it exclusive
//                     ("RocksDB/cLSM" series in the figures).
//
// All four share the same multi-versioned BaselineMemTable and the same
// DiskComponent as FloDB, so differences in the figures come from the
// memory-component design — exactly the paper's claim.

#ifndef FLODB_BASELINES_BASELINE_STORE_H_
#define FLODB_BASELINES_BASELINE_STORE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flodb/baselines/baseline_memtable.h"
#include "flodb/common/synchronization.h"
#include "flodb/core/kv_store.h"
#include "flodb/disk/disk_component.h"
#include "flodb/sync/rcu.h"

namespace flodb {

struct BaselineOptions {
  enum class Concurrency { kLevelDB, kHyperLevelDB, kRocksDB, kCLSM };

  std::string name = "Baseline";
  Concurrency concurrency = Concurrency::kLevelDB;
  BaselineMemTable::Kind memtable_kind = BaselineMemTable::Kind::kSkipList;

  size_t memtable_bytes = 4u << 20;
  size_t write_group_max = 64;
  bool enable_persistence = true;
  DiskOptions disk;
};

class BaselineStore final : public KVStore {
 public:
  static Status Open(const BaselineOptions& options, std::unique_ptr<BaselineStore>* out);
  ~BaselineStore() override;

  BaselineStore(const BaselineStore&) = delete;
  BaselineStore& operator=(const BaselineStore&) = delete;

  using KVStore::Get;
  using KVStore::Scan;

  // v2 surface. A batch funnels through the store's own write protocol
  // entry by entry (the single-writer designs still group concurrent
  // batches via their leader queue); WriteOptions::sync is a no-op — the
  // baselines carry no WAL. ReadOptions::snapshot_mode is ignored: the
  // multi-versioned memtable gives every scan a snapshot for free.
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override
      EXCLUDES(clsm_mu_);
  Status Scan(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
              size_t limit, std::vector<std::pair<std::string, std::string>>* out) override
      EXCLUDES(clsm_mu_);
  std::unique_ptr<ScanIterator> NewScanIterator(const ReadOptions& options, const Slice& low_key,
                                                const Slice& high_key) override;
  Status FlushAll() override;
  StoreStats GetStats() const override;
  std::string Name() const override { return options_.name; }

  uint64_t CommittedSeq() const { return committed_seq_.load(std::memory_order_acquire); }

 private:
  struct Writer {
    Slice key;
    Slice value;
    ValueType type;
    bool done = false;
    Status status;
  };

  explicit BaselineStore(const BaselineOptions& options);

  Status Update(const Slice& key, const Slice& value, ValueType type);
  Status WriteSingleWriter(const Slice& key, const Slice& value, ValueType type)
      EXCLUDES(writers_mu_);
  Status WriteHyper(const Slice& key, const Slice& value, ValueType type) EXCLUDES(db_mu_);
  Status WriteClsm(const Slice& key, const Slice& value, ValueType type) EXCLUDES(clsm_mu_);

  // The bodies of Get/Scan minus the cLSM shared lock, so the lock can be
  // taken (or not) in a scope the analysis can follow.
  Status GetImpl(const ReadOptions& options, const Slice& key, std::string* value)
      EXCLUDES(db_mu_);
  Status ScanImpl(const ReadOptions& options, const Slice& low_key, const Slice& high_key,
                  size_t limit, std::vector<std::pair<std::string, std::string>>* out)
      EXCLUDES(db_mu_);

  // Blocks until the active memtable has room; swaps in a new one (and
  // hands the full one to the flush thread) when needed.
  void EnsureRoom() EXCLUDES(db_mu_, clsm_mu_);
  void SwapMemtableLocked() REQUIRES(db_mu_);  // imm slot must be free
  void AdvanceCommitted(uint64_t seq);
  void PublishInOrder(uint64_t seq);

  void FlushLoop();

  BaselineMemTable* NewMemTable() const {
    return new BaselineMemTable(options_.memtable_kind, options_.memtable_bytes);
  }

  const BaselineOptions options_;

  Rcu rcu_;  // safe memtable reclamation (stand-in for refcounted versions)
  std::atomic<BaselineMemTable*> mem_{nullptr};
  std::atomic<BaselineMemTable*> imm_{nullptr};
  std::unique_ptr<DiskComponent> disk_;

  std::atomic<uint64_t> seq_{1};
  std::atomic<uint64_t> committed_seq_{0};

  // The global mutex of LevelDB/Hyper. Deliberately a pure critical-
  // section lock: the state it serializes (mem_/imm_) is atomic for the
  // lock-free designs, so nothing is GUARDED_BY it.
  Mutex db_mu_;
  CondVar room_cv_;     // imm slot freed
  SharedMutex clsm_mu_;  // cLSM's shared-exclusive lock

  Mutex writers_mu_;
  CondVar writers_cv_;
  std::deque<Writer*> writers_ GUARDED_BY(writers_mu_);

  std::thread flush_thread_;
  // flush_cv_'s predicates read only atomics (stop_, imm_); nothing is
  // guarded by flush_mu_.
  Mutex flush_mu_;
  CondVar flush_cv_;
  std::atomic<bool> stop_{false};

  mutable std::atomic<uint64_t> puts_{0}, gets_{0}, deletes_{0}, scans_{0};
  mutable std::atomic<uint64_t> batch_writes_{0}, batch_entries_{0}, iterator_scans_{0};
};

}  // namespace flodb

#endif  // FLODB_BASELINES_BASELINE_STORE_H_
