// RocksDB-like baseline: lock-free reads, single-writer group commit,
// multithreaded compaction (§2.2, "RocksDB"). Variants:
//  * memtable kind skiplist (default; Figure 3) or hash table (Figure 4,
//    "Hash-based memtable implementations" [7]);
//  * cLSM mode ("RocksDB/cLSM" [13]): global shared-exclusive lock with
//    concurrent writes.
// Factory over BaselineStore, which carries the full v2 KVStore surface
// (WriteBatch commits, ReadOptions, chunked ScanIterators).

#ifndef FLODB_BASELINES_ROCKSDB_LIKE_H_
#define FLODB_BASELINES_ROCKSDB_LIKE_H_

#include <memory>

#include "flodb/baselines/baseline_store.h"

namespace flodb {

struct RocksDBLikeConfig {
  size_t memtable_bytes = 4u << 20;
  BaselineMemTable::Kind memtable_kind = BaselineMemTable::Kind::kSkipList;
  bool clsm_mode = false;
  int compaction_threads = 2;  // RocksDB: multithreaded merging
};

Status OpenRocksDBLike(const RocksDBLikeConfig& config, const DiskOptions& disk,
                       std::unique_ptr<KVStore>* out);

}  // namespace flodb

#endif  // FLODB_BASELINES_ROCKSDB_LIKE_H_
