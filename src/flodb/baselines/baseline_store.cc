#include "flodb/baselines/baseline_store.h"

#include <algorithm>

#include "flodb/disk/merging_iterator.h"
#include "flodb/sync/backoff.h"

namespace flodb {

using Concurrency = BaselineOptions::Concurrency;

BaselineStore::BaselineStore(const BaselineOptions& options) : options_(options) {}

Status BaselineStore::Open(const BaselineOptions& options, std::unique_ptr<BaselineStore>* out) {
  if (options.enable_persistence &&
      (options.disk.env == nullptr || options.disk.path.empty())) {
    return Status::InvalidArgument("persistence requires disk.env and disk.path");
  }
  auto store = std::unique_ptr<BaselineStore>(new BaselineStore(options));
  if (options.enable_persistence) {
    Status s = DiskComponent::Open(options.disk, &store->disk_);
    if (!s.ok()) {
      return s;
    }
    const uint64_t max_seq = store->disk_->MaxPersistedSeq();
    store->seq_.store(max_seq + 1, std::memory_order_relaxed);
    store->committed_seq_.store(max_seq, std::memory_order_relaxed);
  }
  store->mem_.store(store->NewMemTable(), std::memory_order_relaxed);
  store->flush_thread_ = std::thread([raw = store.get()] { raw->FlushLoop(); });
  *out = std::move(store);
  return Status::OK();
}

BaselineStore::~BaselineStore() {
  stop_.store(true, std::memory_order_seq_cst);
  flush_cv_.SignalAll();
  room_cv_.SignalAll();
  if (flush_thread_.joinable()) {
    flush_thread_.join();
  }
  delete mem_.load(std::memory_order_relaxed);
  delete imm_.load(std::memory_order_relaxed);
}

Status BaselineStore::Write(const WriteOptions& options, WriteBatch* batch) {
  if (batch == nullptr) {
    return Status::InvalidArgument("null write batch");
  }
  if (batch->Empty()) {
    return Status::OK();
  }
  // Apply entry by entry through the configured write protocol; the
  // single-writer designs group concurrent batches in their leader queue
  // anyway, which is the only batching the originals did.
  Status result;
  uint64_t value_entries = 0;
  Status s = batch->ForEach([&](const Slice& key, const Slice& value, ValueType type) {
    if (type == ValueType::kValue) {
      ++value_entries;
    }
    if (result.ok()) {
      result = Update(key, value, type);
    }
  });
  if (!s.ok()) {
    return s;
  }
  if (options.fill_stats) {
    batch_writes_.fetch_add(1, std::memory_order_relaxed);
    batch_entries_.fetch_add(batch->Count(), std::memory_order_relaxed);
    puts_.fetch_add(value_entries, std::memory_order_relaxed);
    deletes_.fetch_add(batch->Count() - value_entries, std::memory_order_relaxed);
  }
  return result;
}

Status BaselineStore::Update(const Slice& key, const Slice& value, ValueType type) {
  switch (options_.concurrency) {
    case Concurrency::kLevelDB:
    case Concurrency::kRocksDB:
      return WriteSingleWriter(key, value, type);
    case Concurrency::kHyperLevelDB:
      return WriteHyper(key, value, type);
    case Concurrency::kCLSM:
      return WriteClsm(key, value, type);
  }
  return Status::NotSupported("unknown concurrency mode");
}

void BaselineStore::SwapMemtableLocked() {
  db_mu_.AssertHeld();
  BaselineMemTable* full = mem_.load(std::memory_order_seq_cst);
  imm_.store(full, std::memory_order_seq_cst);
  mem_.store(NewMemTable(), std::memory_order_seq_cst);
  flush_cv_.SignalAll();
}

void BaselineStore::EnsureRoom() {
  // Explicit lock()/unlock() pairing (not MutexLock): the cLSM branch
  // drops db_mu_ to take clsm_mu_ exclusively first (lock ordering:
  // clsm_mu_ before db_mu_), and the analysis checks the manual pairing
  // on every branch.
  db_mu_.lock();
  while (!stop_.load(std::memory_order_relaxed) &&
         mem_.load(std::memory_order_seq_cst)->OverTarget()) {
    if (imm_.load(std::memory_order_seq_cst) == nullptr) {
      if (options_.concurrency == Concurrency::kCLSM) {
        // cLSM blocks every operation while the memory component is
        // switched: take the shared-exclusive lock exclusively.
        db_mu_.unlock();
        WriterMutexLock exclusive(clsm_mu_);
        MutexLock db2(db_mu_);
        if (imm_.load(std::memory_order_seq_cst) == nullptr &&
            mem_.load(std::memory_order_seq_cst)->OverTarget()) {
          SwapMemtableLocked();
        }
        return;
      }
      SwapMemtableLocked();
      db_mu_.unlock();
      return;
    }
    // Memtable full AND a flush is still running: writers are delayed —
    // the very effect Figures 3/4 measure as memory grows.
    room_cv_.WaitFor(db_mu_, std::chrono::milliseconds(1));
  }
  db_mu_.unlock();
}

void BaselineStore::AdvanceCommitted(uint64_t seq) {
  uint64_t cur = committed_seq_.load(std::memory_order_relaxed);
  while (cur < seq && !committed_seq_.compare_exchange_weak(cur, seq, std::memory_order_acq_rel,
                                                            std::memory_order_relaxed)) {
  }
}

void BaselineStore::PublishInOrder(uint64_t seq) {
  // Writers commit their version numbers strictly in order — the
  // "expensive synchronization ... to maintain the order of the updates,
  // through version numbers" (§2.2).
  Backoff backoff;
  while (committed_seq_.load(std::memory_order_acquire) != seq - 1) {
    backoff.Pause();
  }
  committed_seq_.store(seq, std::memory_order_release);
}

Status BaselineStore::WriteSingleWriter(const Slice& key, const Slice& value, ValueType type) {
  Writer w;
  w.key = key;
  w.value = value;
  w.type = type;

  // Explicit lock()/unlock() pairing (not MutexLock): the leader drops
  // writers_mu_ mid-scope to apply the group, and the analysis checks
  // the manual pairing on every branch.
  writers_mu_.lock();
  writers_.push_back(&w);
  while (!w.done && writers_.front() != &w) {
    writers_cv_.Wait(writers_mu_);
  }
  if (w.done) {
    // A leader already applied our write; `w` is ours alone again, safe
    // to read unlocked.
    writers_mu_.unlock();
    return w.status;
  }

  // We are the leader: collect a group and apply it sequentially.
  const size_t group_size = std::min(writers_.size(), options_.write_group_max);
  std::vector<Writer*> group(writers_.begin(), writers_.begin() + group_size);
  writers_mu_.unlock();

  EnsureRoom();
  uint64_t last_seq = 0;
  {
    RcuReadGuard guard(rcu_);
    BaselineMemTable* mem = mem_.load(std::memory_order_seq_cst);
    for (Writer* writer : group) {
      const uint64_t seq = seq_.fetch_add(1, std::memory_order_acq_rel);
      mem->Add(writer->key, writer->value, seq, writer->type);
      last_seq = seq;
    }
  }
  AdvanceCommitted(last_seq);

  writers_mu_.lock();
  for (size_t i = 0; i < group.size(); ++i) {
    writers_.pop_front();
    group[i]->done = true;
    group[i]->status = Status::OK();
  }
  writers_mu_.unlock();
  writers_cv_.SignalAll();
  return Status::OK();
}

Status BaselineStore::WriteHyper(const Slice& key, const Slice& value, ValueType type) {
  EnsureRoom();
  uint64_t seq;
  {
    // Global mutex at the start of the operation (version assignment).
    MutexLock db(db_mu_);
    seq = seq_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    RcuReadGuard guard(rcu_);
    mem_.load(std::memory_order_seq_cst)->Add(key, value, seq, type);
  }
  PublishInOrder(seq);
  {
    // Global mutex at the end of the operation.
    MutexLock db(db_mu_);
  }
  return Status::OK();
}

Status BaselineStore::WriteClsm(const Slice& key, const Slice& value, ValueType type) {
  while (true) {
    uint64_t seq = 0;
    bool inserted = false;
    {
      ReaderMutexLock shared(clsm_mu_);
      RcuReadGuard guard(rcu_);
      BaselineMemTable* mem = mem_.load(std::memory_order_seq_cst);
      if (!mem->OverTarget()) {
        seq = seq_.fetch_add(1, std::memory_order_acq_rel);
        mem->Add(key, value, seq, type);
        inserted = true;
      }
    }
    if (inserted) {
      PublishInOrder(seq);  // outside all locks
      return Status::OK();
    }
    EnsureRoom();  // takes the lock exclusively for the switch
  }
}

Status BaselineStore::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  if (options.fill_stats) {
    gets_.fetch_add(1, std::memory_order_relaxed);
  }
  // The cLSM shared lock is conditional, which the analysis cannot track
  // through one scope — so the body lives in GetImpl and the lock wraps
  // the call where it is taken at all.
  if (options_.concurrency == Concurrency::kCLSM) {
    ReaderMutexLock clsm_shared(clsm_mu_);
    return GetImpl(options, key, value);
  }
  return GetImpl(options, key, value);
}

Status BaselineStore::GetImpl(const ReadOptions& options, const Slice& key, std::string* value) {
  (void)options;
  const bool global_lock_reads = options_.concurrency == Concurrency::kLevelDB ||
                                 options_.concurrency == Concurrency::kHyperLevelDB;
  if (global_lock_reads) {
    // Critical section #1: reference the memory components / metadata.
    MutexLock db(db_mu_);
  }

  ValueType type = ValueType::kValue;
  uint64_t seq = 0;
  bool found = false;
  {
    RcuReadGuard guard(rcu_);
    for (BaselineMemTable* table : {mem_.load(std::memory_order_seq_cst),
                                    imm_.load(std::memory_order_seq_cst)}) {
      if (table != nullptr && table->Get(key, UINT64_MAX, value, &seq, &type)) {
        found = true;
        break;
      }
    }
  }
  Status result = Status::NotFound();
  if (found) {
    result = type == ValueType::kTombstone ? Status::NotFound() : Status::OK();
  } else if (disk_ != nullptr) {
    Status s = disk_->Get(key, value, &seq, &type);
    if (s.ok()) {
      result = type == ValueType::kTombstone ? Status::NotFound() : Status::OK();
    } else if (!s.IsNotFound()) {
      result = s;
    }
  }

  if (global_lock_reads) {
    // Critical section #2: drop references (LevelDB's unref pattern).
    MutexLock db(db_mu_);
  }
  return result;
}

Status BaselineStore::Scan(const ReadOptions& options, const Slice& low_key,
                           const Slice& high_key, size_t limit,
                           std::vector<std::pair<std::string, std::string>>* out) {
  if (options.fill_stats) {
    scans_.fetch_add(1, std::memory_order_relaxed);
  }
  out->clear();
  // Same conditional-lock split as Get/GetImpl.
  if (options_.concurrency == Concurrency::kCLSM) {
    ReaderMutexLock clsm_shared(clsm_mu_);
    return ScanImpl(options, low_key, high_key, limit, out);
  }
  return ScanImpl(options, low_key, high_key, limit, out);
}

Status BaselineStore::ScanImpl(const ReadOptions& options, const Slice& low_key,
                               const Slice& high_key, size_t limit,
                               std::vector<std::pair<std::string, std::string>>* out) {
  (void)options;
  const bool global_lock_reads = options_.concurrency == Concurrency::kLevelDB ||
                                 options_.concurrency == Concurrency::kHyperLevelDB;
  if (global_lock_reads) {
    MutexLock db(db_mu_);
  }

  // Multi-versioning gives baselines point-in-time scans for free: pick a
  // snapshot and ignore newer versions.
  const uint64_t snapshot = committed_seq_.load(std::memory_order_acquire);
  {
    RcuReadGuard guard(rcu_);
    std::vector<std::unique_ptr<Iterator>> children;
    for (BaselineMemTable* table : {mem_.load(std::memory_order_seq_cst),
                                    imm_.load(std::memory_order_seq_cst)}) {
      if (table != nullptr) {
        children.push_back(table->NewSortedIterator());
      }
    }
    if (disk_ != nullptr) {
      children.push_back(disk_->NewIterator());
    }
    std::unique_ptr<Iterator> merged = NewMergingIterator(std::move(children));

    std::string last_key;
    bool has_last = false;
    for (merged->Seek(low_key); merged->Valid(); merged->Next()) {
      if (!high_key.empty() && merged->key().compare(high_key) >= 0) {
        break;
      }
      if (merged->seq() > snapshot) {
        continue;  // newer than our snapshot: invisible
      }
      if (has_last && merged->key() == Slice(last_key)) {
        continue;  // older version of an emitted key
      }
      last_key.assign(merged->key().data(), merged->key().size());
      has_last = true;
      if (merged->type() == ValueType::kTombstone) {
        continue;
      }
      out->emplace_back(last_key, merged->value().ToString());
      if (limit != 0 && out->size() >= limit) {
        break;
      }
    }
  }

  if (global_lock_reads) {
    MutexLock db(db_mu_);
  }
  return Status::OK();
}

std::unique_ptr<ScanIterator> BaselineStore::NewScanIterator(const ReadOptions& options,
                                                             const Slice& low_key,
                                                             const Slice& high_key) {
  if (options.fill_stats) {
    iterator_scans_.fetch_add(1, std::memory_order_relaxed);
  }
  // The generic chunked cursor over Scan() — each chunk is a snapshot of
  // its own, fetched resuming after the last returned key.
  return KVStore::NewScanIterator(options, low_key, high_key);
}

void BaselineStore::FlushLoop() {
  while (true) {
    BaselineMemTable* imm;
    {
      MutexLock lock(flush_mu_);
      // The predicate reads only atomics, so a lambda is fine here.
      flush_cv_.Await(flush_mu_, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               imm_.load(std::memory_order_seq_cst) != nullptr;
      });
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }
    imm = imm_.load(std::memory_order_seq_cst);
    if (imm == nullptr) {
      continue;
    }
    // For hash memtables this is where the linearithmic collect+sort
    // happens — the flush delay of Figure 4.
    std::unique_ptr<Iterator> iter = imm->NewSortedIterator();
    if (disk_ != nullptr) {
      Status s = disk_->AddRun(iter.get());
      if (!s.ok() && !s.IsAborted()) {
        fprintf(stderr, "baseline: flush failed: %s\n", s.ToString().c_str());
      }
    }
    imm_.store(nullptr, std::memory_order_seq_cst);
    rcu_.Synchronize();  // readers may still hold the pointer
    delete imm;
    room_cv_.SignalAll();
  }
}

Status BaselineStore::FlushAll() {
  while (true) {
    bool empty;
    {
      MutexLock db(db_mu_);
      BaselineMemTable* mem = mem_.load(std::memory_order_seq_cst);
      if (mem->Count() > 0 && imm_.load(std::memory_order_seq_cst) == nullptr) {
        SwapMemtableLocked();
      }
      empty = mem_.load(std::memory_order_seq_cst)->Count() == 0 &&
              imm_.load(std::memory_order_seq_cst) == nullptr;
    }
    if (empty) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (disk_ != nullptr) {
    disk_->WaitForCompactions();
  }
  return Status::OK();
}

StoreStats BaselineStore::GetStats() const {
  StoreStats stats;
  stats.puts = puts_.load(std::memory_order_relaxed);
  stats.gets = gets_.load(std::memory_order_relaxed);
  stats.deletes = deletes_.load(std::memory_order_relaxed);
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.batch_writes = batch_writes_.load(std::memory_order_relaxed);
  stats.batch_entries = batch_entries_.load(std::memory_order_relaxed);
  stats.iterator_scans = iterator_scans_.load(std::memory_order_relaxed);
  if (disk_ != nullptr) {
    stats.disk = disk_->GetStats();
  }
  return stats;
}

}  // namespace flodb
