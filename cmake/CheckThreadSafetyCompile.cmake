# Driver for the thread-safety negative-compile harness
# (tests/negative_compile/). Compiles one snippet with the same
# -Wthread-safety flags the lint-thread-safety CI job uses and asserts
# the outcome:
#
#   EXPECT=fail — the compile must FAIL, and the diagnostics must
#     mention thread-safety (a snippet that dies of an unrelated syntax
#     error would otherwise pass vacuously);
#   EXPECT=pass — the compile must succeed (the positive control that
#     proves the harness itself still compiles correct code).
#
# Usage:
#   cmake -DCOMPILER=<clang++> -DSNIPPET=<file.cc> -DINCLUDE_DIR=<src>
#         -DEXPECT=fail|pass -P CheckThreadSafetyCompile.cmake

foreach(var COMPILER SNIPPET INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "CheckThreadSafetyCompile: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only
          -Wthread-safety -Wthread-safety-beta -Werror
          -I${INCLUDE_DIR} ${SNIPPET}
  RESULT_VARIABLE compile_rc
  OUTPUT_VARIABLE compile_out
  ERROR_VARIABLE compile_err)

string(APPEND compile_out "${compile_err}")

if(EXPECT STREQUAL "pass")
  if(NOT compile_rc EQUAL 0)
    message(FATAL_ERROR
      "positive control failed to compile (rc=${compile_rc}):\n${compile_out}")
  endif()
elseif(EXPECT STREQUAL "fail")
  if(compile_rc EQUAL 0)
    message(FATAL_ERROR
      "snippet compiled cleanly but MUST fail: ${SNIPPET}\n"
      "the thread-safety analysis did not catch the violation")
  endif()
  # The failure has to come from the analysis, not a broken snippet.
  if(NOT compile_out MATCHES "thread-safety|-Wthread-safety")
    message(FATAL_ERROR
      "snippet failed for a reason other than thread-safety:\n${compile_out}")
  endif()
  message(STATUS "rejected as expected: ${SNIPPET}")
else()
  message(FATAL_ERROR "CheckThreadSafetyCompile: EXPECT must be pass|fail")
endif()
