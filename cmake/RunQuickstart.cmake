# Runs the quickstart example against a throwaway DB directory.
# Usage: cmake -DQUICKSTART_EXE=<path> -DQUICKSTART_DB=<dir> -P RunQuickstart.cmake
#
# The directory is wiped first so reruns (and parallel build trees)
# never see stale or shared state.
file(REMOVE_RECURSE "${QUICKSTART_DB}")
execute_process(
  COMMAND "${QUICKSTART_EXE}" "${QUICKSTART_DB}"
  RESULT_VARIABLE rc)
file(REMOVE_RECURSE "${QUICKSTART_DB}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${rc}")
endif()
