// flodb-cli: a minimal redis-cli-style client for flodb-server.
//
//   flodb-cli -p 6399 SET user:1 alice     # one-shot command
//   flodb-cli -p 6399                      # REPL on stdin
//
// Replies print in redis-cli notation: "(integer) 3", "(nil)",
// "(error) ...", numbered array elements.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "flodb/net/resp_client.h"

namespace {

void PrintReply(const flodb::RespReply& reply, int indent = 0) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (reply.type) {
    case flodb::RespReply::Type::kSimple:
      std::printf("%s%s\n", pad.c_str(), reply.str.c_str());
      break;
    case flodb::RespReply::Type::kError:
      std::printf("%s(error) %s\n", pad.c_str(), reply.str.c_str());
      break;
    case flodb::RespReply::Type::kInteger:
      std::printf("%s(integer) %lld\n", pad.c_str(), static_cast<long long>(reply.integer));
      break;
    case flodb::RespReply::Type::kBulk:
      std::printf("%s\"%s\"\n", pad.c_str(), reply.str.c_str());
      break;
    case flodb::RespReply::Type::kNil:
      std::printf("%s(nil)\n", pad.c_str());
      break;
    case flodb::RespReply::Type::kArray:
      if (reply.elements.empty()) {
        std::printf("%s(empty array)\n", pad.c_str());
      }
      for (size_t i = 0; i < reply.elements.size(); ++i) {
        std::printf("%s%zu) ", pad.c_str(), i + 1);
        PrintReply(reply.elements[i], 0);
      }
      break;
  }
}

// Whitespace tokenizer with double-quote grouping ("a b" is one arg).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> args;
  std::string current;
  bool in_quotes = false;
  bool have_token = false;
  for (char c : line) {
    if (c == '"') {
      in_quotes = !in_quotes;
      have_token = true;
      continue;
    }
    if (!in_quotes && (c == ' ' || c == '\t')) {
      if (have_token) {
        args.push_back(current);
        current.clear();
        have_token = false;
      }
      continue;
    }
    current.push_back(c);
    have_token = true;
  }
  if (have_token) {
    args.push_back(current);
  }
  return args;
}

int RunOne(flodb::RespClient& client, const std::vector<std::string>& args) {
  flodb::RespReply reply;
  flodb::Status status = client.Command(args, &reply);
  if (!status.ok()) {
    std::fprintf(stderr, "flodb-cli: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintReply(reply);
  return reply.type == flodb::RespReply::Type::kError ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 6399;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "-p" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--help") {
      std::fprintf(stderr, "usage: %s [-h host] [-p port] [COMMAND [args...]]\n", argv[0]);
      return 0;
    } else {
      break;  // start of the command words
    }
  }

  flodb::RespClient client;
  flodb::Status status = client.Connect(host, port);
  if (!status.ok()) {
    std::fprintf(stderr, "flodb-cli: %s\n", status.ToString().c_str());
    return 1;
  }

  if (i < argc) {
    std::vector<std::string> args(argv + i, argv + argc);
    return RunOne(client, args);
  }

  // REPL.
  std::string line;
  while (true) {
    std::printf("%s:%d> ", host.c_str(), port);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    const std::vector<std::string> args = Tokenize(line);
    if (args.empty()) {
      continue;
    }
    if (args.size() == 1 && (args[0] == "exit" || args[0] == "quit")) {
      break;
    }
    RunOne(client, args);
  }
  return 0;
}
