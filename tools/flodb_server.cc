// flodb-server: the FloDB network server binary (DESIGN.md §11).
//
//   flodb-server --db /var/lib/flodb [--port 6399] [--shards 4] [--sync]
//
// Speaks RESP2 on a TCP port, so redis-cli / redis-benchmark / memtier
// work out of the box for the supported command set (GET SET DEL MGET
// MSET SCAN PING ECHO INFO). The WAL is ON by default: a SIGTERM drain
// plus clean store close makes every acknowledged write durable, and
// --sync upgrades that to fsync-before-ack (group commit keeps it cheap
// under pipelining — see BUILDING.md "Running the server").
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, flush
// in-flight replies, close the store cleanly, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "flodb/core/flodb.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/env.h"
#include "flodb/net/server.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --db PATH        database directory (default ./flodb-data)\n"
               "  --port N         TCP port, 0 = ephemeral (default 6399)\n"
               "  --bind ADDR      bind address (default 127.0.0.1)\n"
               "  --workers N      event-loop threads, 0 = auto (default 0)\n"
               "  --shards N       FloDB shards (default 1)\n"
               "  --memory-mb N    memory-component budget (default 64)\n"
               "  --sync           fsync the WAL before acking every write\n"
               "  --no-wal         disable write-ahead logging (no crash durability)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path = "./flodb-data";
  std::string bind_address = "127.0.0.1";
  int port = 6399;
  int workers = 0;
  int shards = 1;
  long memory_mb = 64;
  bool sync_writes = false;
  bool enable_wal = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--db") {
      db_path = next("--db");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--bind") {
      bind_address = next("--bind");
    } else if (arg == "--workers") {
      workers = std::atoi(next("--workers"));
    } else if (arg == "--shards") {
      shards = std::atoi(next("--shards"));
    } else if (arg == "--memory-mb") {
      memory_mb = std::atol(next("--memory-mb"));
    } else if (arg == "--sync") {
      sync_writes = true;
    } else if (arg == "--no-wal") {
      enable_wal = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  // Block the shutdown signals in every thread (the server's workers
  // inherit this mask); the main thread collects them with sigwait so the
  // drain runs on a normal stack, not in a signal handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  flodb::FloDbOptions options;
  options.memory_budget_bytes = static_cast<size_t>(memory_mb) << 20;
  options.enable_wal = enable_wal;
  options.shards = shards;
  options.disk.env = flodb::GetPosixEnv();
  options.disk.path = db_path;

  std::unique_ptr<flodb::KVStore> store;
  flodb::Status status;
  if (shards > 1) {
    std::unique_ptr<flodb::ShardedKVStore> sharded;
    status = flodb::ShardedKVStore::Open(options, &sharded);
    store = std::move(sharded);
  } else {
    std::unique_ptr<flodb::FloDB> single;
    status = flodb::FloDB::Open(options, &single);
    store = std::move(single);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "flodb-server: cannot open store at %s: %s\n", db_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }

  flodb::ServerOptions server_options;
  server_options.bind_address = bind_address;
  server_options.port = port;
  server_options.workers = workers;
  server_options.sync_writes = sync_writes;

  std::unique_ptr<flodb::Server> server;
  status = flodb::Server::Start(server_options, store.get(), &server);
  if (!status.ok()) {
    std::fprintf(stderr, "flodb-server: cannot start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("flodb-server listening on %s:%d (store=%s, db=%s, shards=%d, wal=%s, sync=%s)\n",
              bind_address.c_str(), server->port(), store->Name().c_str(), db_path.c_str(),
              shards, enable_wal ? "on" : "off", sync_writes ? "on" : "off");
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("flodb-server: received %s, draining...\n", sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);

  server->Shutdown();
  const flodb::ServerStats stats = server->GetStats();
  server.reset();
  store.reset();  // clean close: WAL + manifest consistent on disk
  std::printf(
      "flodb-server: drained (connections=%llu commands=%llu batches=%llu) — bye\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.commands_processed),
      static_cast<unsigned long long>(stats.pipelined_batches));
  return 0;
}
