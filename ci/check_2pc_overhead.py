#!/usr/bin/env python3
"""Gate the price of cross-shard atomicity: for every (threads, batch)
cell with batch >= MIN_BATCH, FloDB-sharded-2pc must hold at least
(1 - MAX_OVERHEAD) of FloDB-sharded-legacy's entries/s, and the 2pc rows
must actually have committed transactions (txn_commits > 0), proving the
two-phase path ran rather than every batch sneaking down the single-shard
fast path.

Usage:
    check_2pc_overhead.py BENCH_fig_batch_write.json [--max-overhead 0.15]
        [--min-batch 64]

Consumes the --json output of bench/fig_batch_write (rows keyed by store
"FloDB-sharded-2pc" / "FloDB-sharded-legacy", threads and batch). The
comparison is SELF-RELATIVE — both columns run in the same process on the
same runner — so it is immune to runner-generation throughput swings that
the absolute baselines must absorb. Small batches are exempt: at batch=1
the prepare+marker round trip is the whole write, and the knob exists
precisely because large batches amortize it.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json
import sys

ATOMIC = "FloDB-sharded-2pc"
LEGACY = "FloDB-sharded-legacy"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("--max-overhead", type=float, default=0.15,
                        help="max fractional 2pc slowdown vs legacy at "
                             "batch >= min-batch (default 0.15)")
    parser.add_argument("--min-batch", type=int, default=64,
                        help="smallest batch size the gate applies to (default 64)")
    args = parser.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row.get("store"), row.get("threads"), row.get("batch"))] = row

    cells = sorted((t, b) for (store, t, b) in rows
                   if store == ATOMIC and (LEGACY, t, b) in rows
                   and b is not None and b >= args.min_batch)
    if not cells:
        print(f"FAIL: no (threads, batch >= {args.min_batch}) cell present for "
              "both sharded columns — did the bench run with FLODB_BENCH_SHARDS > 1?")
        return 1

    floor = 1.0 - args.max_overhead
    failures = []
    for threads, batch in cells:
        atomic = rows[(ATOMIC, threads, batch)]
        legacy = rows[(LEGACY, threads, batch)]
        ratio = atomic["mops"] / legacy["mops"] if legacy["mops"] > 0 else float("inf")
        print(f"threads={threads} batch={batch}: 2pc {atomic['mops']:.4f} Mops vs "
              f"legacy {legacy['mops']:.4f} Mops -> {ratio:.2f}x (need >= {floor:.2f}x)")
        if ratio < floor:
            failures.append(f"threads={threads} batch={batch}: 2pc at {ratio:.2f}x "
                            f"of legacy, below the {floor:.2f}x floor")
        if atomic.get("txn_commits", 0) <= 0:
            failures.append(f"threads={threads} batch={batch}: 2pc row has no "
                            "committed transactions — the atomic path never ran")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"PASS: {len(cells)} cell(s) — cross-shard 2pc costs <= "
          f"{args.max_overhead:.0%} vs legacy at batch >= {args.min_batch}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
