#!/usr/bin/env python3
"""Compare a bench JSON (--json output of a fig* binary) against a
checked-in baseline and fail on throughput regressions.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--threshold 0.30]

Rows are matched on (store, threads, shards); a row missing from either
side is reported but not fatal (the sweep matrix may grow). The check
fails when any matched row's throughput drops more than THRESHOLD below
the baseline.

Baseline philosophy: the checked-in numbers are a conservative floor
(roughly half of a typical dev-box run at the pinned perf-smoke
settings), because absolute throughput varies across CI runner
generations. The 30% threshold on top means the job only fails on
genuine order-of-magnitude problems — an accidental global lock, a
serialization point on the write path — not on runner jitter. Refresh
the baselines (BUILDING.md "Performance smoke") after intentional
perf-relevant changes.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = (row.get("store"), row.get("threads"), row.get("shards", 1))
        rows[key] = row
    return doc.get("figure", "?"), rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional drop vs baseline (default 0.30)")
    args = parser.parse_args()

    fig_cur, current = load_rows(args.current)
    fig_base, baseline = load_rows(args.baseline)
    if fig_cur != fig_base:
        print(f"FAIL: figure mismatch: current={fig_cur} baseline={fig_base}")
        return 1

    failures = []
    compared = 0
    for key, base_row in sorted(baseline.items(), key=str):
        cur_row = current.get(key)
        label = f"{key[0]} threads={key[1]} shards={key[2]}"
        if cur_row is None:
            print(f"note: no current row for {label} (matrix changed?)")
            continue
        base_mops = base_row.get("mops", 0)
        cur_mops = cur_row.get("mops", 0)
        if base_mops <= 0:
            continue
        compared += 1
        ratio = cur_mops / base_mops
        status = "ok"
        if cur_mops < base_mops * (1.0 - args.threshold):
            status = "REGRESSION"
            failures.append(label)
        print(f"{status:>10}  {label:<40} {cur_mops:.4f} vs baseline {base_mops:.4f} "
              f"({ratio:.2f}x)")

    for key in sorted(set(current) - set(baseline), key=str):
        print(f"note: new row not in baseline: {key}")

    if compared == 0:
        print("FAIL: no comparable rows — baseline and current share no matrix cells")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} row(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}:")
        for label in failures:
            print(f"  - {label}")
        return 1
    print(f"PASS: {compared} row(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
