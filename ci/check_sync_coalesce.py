#!/usr/bin/env python3
"""Gate the group-commit win: at the highest common writer count,
sync_coalesce=on must beat per-writer fsync by at least MIN_RATIO in
sync-write throughput, and the coalesced rows must actually share fsyncs
(wal_syncs strictly below writes).

Usage:
    check_sync_coalesce.py BENCH_fig_sync_write.json [--min-ratio 2.0]

Consumes the --json output of bench/fig_sync_write (rows keyed by store
"FloDB-sync-coalesce" / "FloDB-sync-per-writer" and thread count). The
2x bar is deliberately below the typical 4-8x so scheduler jitter on a
loaded runner cannot trip it; a failure means the writer queue stopped
forming groups — e.g. the leader holding the WAL mutex through its
fsync again.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json
import sys

COALESCE = "FloDB-sync-coalesce"
PER_WRITER = "FloDB-sync-per-writer"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="min coalesce/per-writer throughput ratio (default 2.0)")
    args = parser.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row.get("store"), row.get("threads"))] = row

    common = sorted(t for (store, t) in rows if store == COALESCE
                    and (PER_WRITER, t) in rows)
    if not common:
        print("FAIL: no thread count present for both coalesce modes")
        return 1
    threads = common[-1]
    if threads < 2:
        print(f"FAIL: need a multi-writer data point, best common is threads={threads}")
        return 1

    on = rows[(COALESCE, threads)]
    off = rows[(PER_WRITER, threads)]
    ratio = on["mops"] / off["mops"] if off["mops"] > 0 else float("inf")
    print(f"threads={threads}: coalesce {on['mops']:.5f} Mops vs per-writer "
          f"{off['mops']:.5f} Mops -> {ratio:.2f}x (need >= {args.min_ratio:.2f}x)")

    failures = []
    if ratio < args.min_ratio:
        failures.append(f"coalesce speedup {ratio:.2f}x below {args.min_ratio:.2f}x")

    syncs, writes = on.get("wal_syncs"), on.get("writes")
    if syncs is None or writes is None:
        failures.append("coalesce row missing wal_syncs/writes fields")
    else:
        print(f"threads={threads}: coalesce issued {syncs:.0f} fsyncs for "
              f"{writes:.0f} writes ({syncs / max(writes, 1):.3f} syncs/write)")
        if syncs >= writes:
            failures.append(f"wal_syncs ({syncs:.0f}) not below writes ({writes:.0f}) "
                            "— no fsync sharing happened")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS: group commit shares fsyncs and beats per-writer fsync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
