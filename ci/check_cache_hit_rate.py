#!/usr/bin/env python3
"""Gate the block cache's efficacy, not just its speed: on the skewed
(zipfian) read workload a warm cache of reasonable size MUST serve the
majority of block reads, or the cache is misbehaving (broken keying, an
eviction bug, a purge that drops the hot set) even if throughput still
looks plausible.

Usage:
    check_cache_hit_rate.py BENCH.json [--dist zipfian]
        [--min-hit-rate 0.5] [--min-cache-bytes 4194304]

Reads fig_read_cached --json output: rows with {"dist", "cache_bytes",
"hit_rate"}. Every row of the chosen distribution whose cache_bytes >=
--min-cache-bytes must reach --min-hit-rate. The size cutoff exists
because a deliberately tiny cache legitimately misses (the zipfian hot
set spans ~1000 distinct blocks at the pinned key space); the gate
checks the sizes where the hot set fits.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--dist", default="zipfian",
                        help="distribution to gate (default zipfian)")
    parser.add_argument("--min-hit-rate", type=float, default=0.5,
                        help="required hit rate on gated rows (default 0.5)")
    parser.add_argument("--min-cache-bytes", type=int, default=4 << 20,
                        help="gate only rows with at least this cache size "
                             "(default 4MiB)")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        doc = json.load(f)

    gated = 0
    failures = []
    for row in doc.get("rows", []):
        if row.get("dist") != args.dist:
            continue
        cache_bytes = row.get("cache_bytes", 0)
        hit_rate = row.get("hit_rate", 0.0)
        label = f"{args.dist} cache={round(cache_bytes / 1024)}KB"
        # 1% slack: the bench JSON emitter rounds numbers to 6 significant
        # digits, so exact byte comparisons misclassify boundary sizes.
        if cache_bytes < args.min_cache_bytes * 0.99:
            print(f"      skip  {label:<30} hit_rate={hit_rate:.3f} "
                  f"(below {args.min_cache_bytes >> 10}KB gate size)")
            continue
        gated += 1
        status = "ok"
        if hit_rate < args.min_hit_rate:
            status = "FAIL"
            failures.append(label)
        print(f"{status:>10}  {label:<30} hit_rate={hit_rate:.3f} "
              f"(need >= {args.min_hit_rate:.2f})")

    if gated == 0:
        print(f"FAIL: no {args.dist} rows with cache_bytes >= "
              f"{args.min_cache_bytes} — did the sweep change?")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} row(s) under the "
              f"{args.min_hit_rate:.0%} hit-rate floor:")
        for label in failures:
            print(f"  - {label}")
        return 1
    print(f"PASS: {gated} row(s) at or above {args.min_hit_rate:.0%} hit rate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
