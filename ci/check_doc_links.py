#!/usr/bin/env python3
"""Dead-link lint for the repo docs: every relative markdown link in
*.md (repo root and docs/) must point at a file or directory that
exists. External links (http/https/mailto) and pure #anchors are not
checked — this is a filesystem check, not a crawler.

Usage:
    check_doc_links.py [repo_root]

Stdlib only: CI must not pip install anything.
"""

import os
import re
import sys

# [text](target) — target captured up to the closing paren; markdown
# images ![alt](target) match the same way via the inner [..](..).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files(root):
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _, names in os.walk(docs):
            for name in sorted(names):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    checked = 0
    for path in doc_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                failures.append(f"{rel}: dead link -> {match.group(1)}")
    if failures:
        for failure in failures:
            print("FAIL: " + failure)
        return 1
    print(f"PASS: {checked} relative doc links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
