#!/usr/bin/env python3
"""Dead-link lint for the repo docs: every relative markdown link in
*.md (repo root and docs/) must point at a file or directory that
exists, and every #anchor fragment — intra-document (#section) or
cross-document (file.md#section) — must match a heading in the target
file (GitHub slugification: lowercase, punctuation stripped, spaces to
hyphens, -N suffixes for duplicates). External links (http/https/
mailto) are not checked — this is a filesystem check, not a crawler.

Usage:
    check_doc_links.py [repo_root]

Stdlib only: CI must not pip install anything.
"""

import os
import re
import sys

# [text](target) — target captured up to the closing paren; markdown
# images ![alt](target) match the same way via the inner [..](..).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# Inline markup stripped before slugification: `code`, [text](url),
# **bold** / *em* markers.
INLINE_CODE_RE = re.compile(r"`([^`]*)`")
INLINE_LINK_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def github_slug(heading):
    text = INLINE_CODE_RE.sub(r"\1", heading)
    text = INLINE_LINK_RE.sub(r"\1", text)
    text = text.replace("*", "").replace("_", "").lower()
    # GitHub keeps word characters, spaces and hyphens; everything else
    # (punctuation like :, ., /, §, parens) is dropped.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(text):
    """Anchors of every markdown heading, GitHub-style (-N for dupes)."""
    anchors = set()
    counts = {}
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def doc_files(root):
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _, names in os.walk(docs):
            for name in sorted(names):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    checked = 0
    anchors_checked = 0
    anchor_cache = {}

    def anchors_of(path):
        if path not in anchor_cache:
            try:
                with open(path, encoding="utf-8") as f:
                    anchor_cache[path] = heading_anchors(f.read())
            except OSError:
                anchor_cache[path] = set()
        return anchor_cache[path]

    for path in doc_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            raw = match.group(1)
            if raw.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = raw.partition("#")
            anchor_target = path  # pure #anchor: this document
            if target:
                checked += 1
                resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    failures.append(f"{rel}: dead link -> {raw}")
                    continue
                anchor_target = resolved
            if not fragment:
                continue
            # Fragments are only checkable against markdown headings.
            if not anchor_target.endswith(".md"):
                continue
            anchors_checked += 1
            if fragment.lower() not in anchors_of(anchor_target):
                failures.append(f"{rel}: dead anchor -> {raw}")

    if failures:
        for failure in failures:
            print("FAIL: " + failure)
        return 1
    print(f"PASS: {checked} relative doc links and {anchors_checked} anchors resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
