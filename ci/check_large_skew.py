#!/usr/bin/env python3
"""Gate value separation on the large-skew figure: the separated column
must beat inline churn write-amp by the contracted margin without giving
up zipfian read tail latency.

Usage:
    check_large_skew.py BENCH_fig_large_skew.json \
        [--max-write-amp-ratio 0.5] [--max-p99-ratio 1.2]

Consumes the --json output of bench/fig_large_skew, which emits exactly
one "inline" (threshold 0) and one "separated" row. The bounds encode
the feature's contract: under 1KB-value overwrite churn a vlog moves
pointers through compaction instead of payloads, so separated write-amp
must be <= half of inline (local runs sit near 0.4x), and the extra
pointer hop on reads must cost <= 20% of inline p99 (local runs are at
or below 1.0x once GC is quiesced). Sanity checks assert the separated
row actually wrote a vlog and the inline row did not — a silently
disabled threshold would otherwise sail through with ratio 1.0.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("--max-write-amp-ratio", type=float, default=0.5,
                        help="max separated/inline churn write-amp ratio (default 0.5)")
    parser.add_argument("--max-p99-ratio", type=float, default=1.2,
                        help="max separated/inline read-p99 ratio (default 1.2)")
    args = parser.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    rows = {row.get("mode"): row for row in doc.get("rows", [])}
    inline = rows.get("inline")
    separated = rows.get("separated")
    if inline is None or separated is None:
        print("FAIL: need one 'inline' and one 'separated' row in " + args.current)
        return 1

    failures = []
    for mode, row in (("inline", inline), ("separated", separated)):
        if row.get("churn_writes", 0) <= 0:
            failures.append(f"{mode}: no churn writes completed")
        if row.get("reads", 0) <= 0:
            failures.append(f"{mode}: no reads completed")
    if inline.get("vlog_bytes_written", 0) != 0:
        failures.append("inline: wrote vlog bytes with separation off")
    if separated.get("vlog_bytes_written", 0) <= 0:
        failures.append("separated: wrote no vlog bytes — threshold not in effect")

    write_amp_ratio = (separated["write_amp"] / inline["write_amp"]
                       if inline.get("write_amp") else float("inf"))
    p99_ratio = (separated["read_p99_us"] / inline["read_p99_us"]
                 if inline.get("read_p99_us") else float("inf"))
    print(f"write_amp: inline {inline.get('write_amp'):.2f}, "
          f"separated {separated.get('write_amp'):.2f}, "
          f"ratio {write_amp_ratio:.2f} (max {args.max_write_amp_ratio:.2f})")
    print(f"read p99:  inline {inline.get('read_p99_us'):.0f}us, "
          f"separated {separated.get('read_p99_us'):.0f}us, "
          f"ratio {p99_ratio:.2f} (max {args.max_p99_ratio:.2f})")
    if write_amp_ratio > args.max_write_amp_ratio:
        failures.append(f"write-amp ratio {write_amp_ratio:.2f} "
                        f"> {args.max_write_amp_ratio:.2f}")
    if p99_ratio > args.max_p99_ratio:
        failures.append(f"read p99 ratio {p99_ratio:.2f} > {args.max_p99_ratio:.2f}")

    if failures:
        for failure in failures:
            print("FAIL: " + failure)
        return 1
    print("PASS: value separation holds its write-amp/read-tail contract")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
