#!/usr/bin/env python3
"""Gate compaction amplification: every fig_compaction row must report
write-amp and space-amp under the configured bounds at the quiesced
steady state.

Usage:
    check_write_amp.py BENCH_fig_compaction.json \
        [--max-write-amp 8.0] [--max-space-amp 4.0]

Consumes the --json output of bench/fig_compaction. The bounds are
deliberately loose — local runs sit near write-amp 2.5 and space-amp 1.4
with the bench's shrunken level targets — so only a real regression
(compaction stopped dropping shadowed versions, the picker stopped
scheduling, obsolete files stopped being deleted) trips them. Read
throughput is gated separately by check_bench_regression.py against
ci/bench_baselines/BENCH_fig_compaction.json.

Stdlib only: CI must not pip install anything.
"""

import argparse
import json


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("--max-write-amp", type=float, default=8.0,
                        help="max steady-state write amplification (default 8.0)")
    parser.add_argument("--max-space-amp", type=float, default=4.0,
                        help="max steady-state space amplification (default 4.0)")
    args = parser.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        print("FAIL: no rows in " + args.current)
        return 1

    failures = []
    for row in rows:
        threads = row.get("threads")
        write_amp = row.get("write_amp")
        space_amp = row.get("space_amp")
        if write_amp is None or space_amp is None:
            failures.append(f"threads={threads}: missing write_amp/space_amp")
            continue
        print(f"threads={threads}: write_amp {write_amp:.2f} "
              f"(max {args.max_write_amp:.2f}), space_amp {space_amp:.2f} "
              f"(max {args.max_space_amp:.2f})")
        if write_amp > args.max_write_amp:
            failures.append(f"threads={threads}: write_amp {write_amp:.2f} "
                            f"> {args.max_write_amp:.2f}")
        if space_amp > args.max_space_amp:
            failures.append(f"threads={threads}: space_amp {space_amp:.2f} "
                            f"> {args.max_space_amp:.2f}")
        if row.get("compactions", 0) < 1:
            failures.append(f"threads={threads}: no compactions ran during churn")

    if failures:
        for failure in failures:
            print("FAIL: " + failure)
        return 1
    print("PASS: compaction amplification within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
