// Shared infrastructure for the figure-reproduction benchmarks.
//
// Scaling: the paper ran on a 20-core Xeon with a 960GB SSD, 300GB
// datasets and up to 192GB memory components. These benches reproduce the
// experiment SHAPES at laptop scale: an in-memory Env with a token-bucket
// write throttle stands in for the SSD, datasets are ~10^5 keys, and
// memory components are MBs. Every knob scales via environment variables:
//
//   FLODB_BENCH_SECONDS   seconds per data point        (default 1)
//   FLODB_BENCH_THREADS   comma list of thread counts   (default "1,2,4")
//   FLODB_BENCH_KEYS      key-space size                (default 100000)
//   FLODB_BENCH_VALUE     value bytes                   (default 64)
//   FLODB_BENCH_MEMORY    memory component bytes        (default 2097152)
//   FLODB_BENCH_DISK_MBPS persistence bandwidth cap     (default 32)
//   FLODB_BENCH_SHARDS    comma list of FloDB shard     (default "1")
//                         counts to sweep (system figs
//                         add one FloDB column per count)
//   FLODB_BENCH_CACHE     comma list of extra FloDB      (default none)
//                         block-cache byte sizes; each
//                         adds a FloDB column at that
//                         size ("0" = a FloDB-nocache
//                         column next to the default)
//   FLODB_BENCH_JSON      JSON output path (same as the
//                         --json command-line flag)

#ifndef FLODB_BENCH_BENCH_COMMON_H_
#define FLODB_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "flodb/baselines/hyperleveldb_like.h"
#include "flodb/baselines/leveldb_like.h"
#include "flodb/baselines/rocksdb_like.h"
#include "flodb/bench_util/driver.h"
#include "flodb/bench_util/report.h"
#include "flodb/bench_util/workload.h"
#include "flodb/core/flodb.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/mem_env.h"
#include "flodb/disk/throttled_env.h"

namespace flodb::bench {

template <typename Int>
inline std::vector<Int> ParseNumList(const char* spec, std::vector<Int> def) {
  if (spec == nullptr || *spec == '\0') {
    return def;
  }
  std::vector<Int> out;
  const std::string s(spec);
  size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(static_cast<Int>(atoll(s.c_str() + pos)));
    pos = s.find(',', pos);
    if (pos == std::string::npos) {
      break;
    }
    ++pos;
  }
  return out.empty() ? def : out;
}

inline std::vector<int> ParseIntList(const char* spec, std::vector<int> def) {
  return ParseNumList<int>(spec, std::move(def));
}

inline std::vector<long long> ParseInt64List(const char* spec, std::vector<long long> def) {
  return ParseNumList<long long>(spec, std::move(def));
}

struct BenchConfig {
  double seconds = 1.0;
  std::vector<int> threads = {1, 2, 4};
  uint64_t key_space = 100'000;
  size_t value_bytes = 64;
  size_t memory_bytes = 2u << 20;
  uint64_t disk_mbps = 32;
  // FloDB shard counts to sweep; every count > 1 opens a ShardedKVStore
  // column next to the plain-FloDB one.
  std::vector<int> shard_counts = {1};
  // Extra FloDB block-cache sizes to sweep; every entry adds a FloDB
  // column opened with that block_cache_bytes (0 = caching off) next to
  // the default-cache column.
  std::vector<long long> cache_bytes_list;
  // Machine-readable sink (--json / FLODB_BENCH_JSON); empty = none.
  std::string json_path;

  static BenchConfig FromEnv(int argc = 0, char** argv = nullptr) {
    BenchConfig config;
    config.seconds = EnvDouble("FLODB_BENCH_SECONDS", config.seconds);
    config.key_space = static_cast<uint64_t>(EnvInt("FLODB_BENCH_KEYS", 100'000));
    config.value_bytes = static_cast<size_t>(EnvInt("FLODB_BENCH_VALUE", 64));
    config.memory_bytes = static_cast<size_t>(EnvInt("FLODB_BENCH_MEMORY", 2 << 20));
    config.disk_mbps = static_cast<uint64_t>(EnvInt("FLODB_BENCH_DISK_MBPS", 32));
    config.threads = ParseIntList(getenv("FLODB_BENCH_THREADS"), config.threads);
    config.shard_counts = ParseIntList(getenv("FLODB_BENCH_SHARDS"), config.shard_counts);
    config.cache_bytes_list = ParseInt64List(getenv("FLODB_BENCH_CACHE"), {});
    config.json_path = JsonPathFromArgs(argc, argv);
    return config;
  }
};

// A store bundled with the environments backing it (owned together so the
// store dies before the envs).
struct StoreInstance {
  std::unique_ptr<MemEnv> mem_env;
  std::unique_ptr<ThrottledEnv> throttled_env;
  std::unique_ptr<KVStore> store;

  KVStore* operator->() const { return store.get(); }
  KVStore* get() const { return store.get(); }
};

enum class StoreId { kFloDB, kRocksDB, kRocksDBcLSM, kHyperLevelDB, kLevelDB };

inline const std::vector<StoreId>& AllStores() {
  static const std::vector<StoreId> all = {StoreId::kFloDB, StoreId::kRocksDB,
                                           StoreId::kRocksDBcLSM, StoreId::kHyperLevelDB,
                                           StoreId::kLevelDB};
  return all;
}

inline const char* StoreName(StoreId id) {
  switch (id) {
    case StoreId::kFloDB:
      return "FloDB";
    case StoreId::kRocksDB:
      return "RocksDB";
    case StoreId::kRocksDBcLSM:
      return "RocksDB/cLSM";
    case StoreId::kHyperLevelDB:
      return "HyperLevelDB";
    case StoreId::kLevelDB:
      return "LevelDB";
  }
  return "?";
}

// Opens a fresh store of the given kind over a throttled in-memory disk.
// memory_bytes is the total memory-component budget (FloDB splits it 1:3;
// baselines give it all to their single memtable, as in the paper).
// `shards` > 1 opens FloDB as a range-partitioned ShardedKVStore (ignored
// by the baselines, which have no sharded mode). `block_cache_bytes` >= 0
// overrides the DiskOptions block-cache default for FloDB columns (0 =
// caching off); -1 keeps the default.
inline StoreInstance OpenStore(StoreId id, const BenchConfig& config, size_t memory_bytes,
                               int shards = 1, long long block_cache_bytes = -1) {
  StoreInstance instance;
  instance.mem_env = std::make_unique<MemEnv>();
  instance.throttled_env =
      std::make_unique<ThrottledEnv>(instance.mem_env.get(), config.disk_mbps << 20);

  DiskOptions disk;
  disk.env = instance.throttled_env.get();
  disk.path = "/bench";
  disk.sstable_target_bytes = 1 << 20;
  if (block_cache_bytes >= 0) {
    disk.block_cache_bytes = static_cast<size_t>(block_cache_bytes);
  }

  Status status;
  switch (id) {
    case StoreId::kFloDB: {
      FloDbOptions options;
      options.memory_budget_bytes = memory_bytes;
      options.disk = disk;
      // The paper's evaluation configuration: masters may reuse the
      // previous scan seq (serializable scans, §4.4 optimization).
      options.scan_master_reuse_limit = 8;
      options.shards = shards;
      if (shards > 1) {
        std::unique_ptr<ShardedKVStore> db;
        status = ShardedKVStore::Open(options, &db);
        instance.store = std::move(db);
      } else {
        std::unique_ptr<FloDB> db;
        status = FloDB::Open(options, &db);
        instance.store = std::move(db);
      }
      break;
    }
    case StoreId::kRocksDB: {
      RocksDBLikeConfig rocks;
      rocks.memtable_bytes = memory_bytes;
      status = OpenRocksDBLike(rocks, disk, &instance.store);
      break;
    }
    case StoreId::kRocksDBcLSM: {
      RocksDBLikeConfig rocks;
      rocks.memtable_bytes = memory_bytes;
      rocks.clsm_mode = true;
      status = OpenRocksDBLike(rocks, disk, &instance.store);
      break;
    }
    case StoreId::kHyperLevelDB:
      status = OpenHyperLevelDBLike(memory_bytes, disk, &instance.store);
      break;
    case StoreId::kLevelDB:
      status = OpenLevelDBLike(memory_bytes, disk, &instance.store);
      break;
  }
  if (!status.ok()) {
    fprintf(stderr, "bench: cannot open %s: %s\n", StoreName(id), status.ToString().c_str());
    abort();
  }
  return instance;
}

}  // namespace flodb::bench

#endif  // FLODB_BENCH_BENCH_COMMON_H_
