// Value separation on a larger-than-memory skewed workload: A/B of
// value_separation_threshold = 0 (inline values, today's default) vs 256
// (WiscKey-style vlog, DESIGN.md §13) over a dataset ~10x the memory
// budget with 1KB values and zipfian access.
//
// Three phases per mode:
//   1. load   — sorted-spread full load of the key space, FlushAll;
//   2. churn  — one writer overwrites uniform-drawn keys for the
//      configured duration (uniform on purpose: zipfian writes collapse
//      inside the memory component and never exercise the disk layer),
//      then FlushAll quiesces compaction + vlog GC;
//      write-amp = (LSM flush+compaction bytes + vlog appends) / user
//      bytes, measured over the churn deltas only (the load is identical
//      in both modes);
//   3. read   — one reader issues zipfian point Gets, recording per-op
//      latency; p50/p99 come from the sorted sample.
//
// Separation pays off exactly here: churn compactions move ~30-byte
// pointers instead of 1KB payloads, so churn write-amp collapses, while
// the extra vlog hop costs reads a bounded constant.
// ci/check_large_skew.py gates the separated/inline write-amp ratio and
// the p99 ratio.
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_KEYS
// (default sizes the dataset to ~10x memory), FLODB_BENCH_VALUE
// (default 1024), FLODB_BENCH_MEMORY.
//   FLODB_BENCH_VSEP_THRESHOLD  separation threshold for the B column
//                               (default 256)
//   FLODB_BENCH_ZIPF_THETA      zipfian skew (default 0.99)
//   --json out.json             machine-readable rows (also FLODB_BENCH_JSON)

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"

int main(int argc, char** argv) {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  if (getenv("FLODB_BENCH_VALUE") == nullptr) {
    config.value_bytes = 1024;
  }
  if (getenv("FLODB_BENCH_KEYS") == nullptr) {
    // Dataset ~10x the memory budget (the larger-than-memory regime).
    config.key_space = 10 * static_cast<uint64_t>(config.memory_bytes) /
                       (kEncodedKeyBytes + config.value_bytes);
  }
  const int64_t sep_threshold = EnvInt("FLODB_BENCH_VSEP_THRESHOLD", 256);
  const double zipf_theta = EnvDouble("FLODB_BENCH_ZIPF_THETA", 0.99);

  Report report("fig_large_skew",
                "value separation A/B: zipfian churn + reads over a ~10x-memory dataset");
  report.Header({"mode", "churn w/s", "write_amp", "read/s", "p50 us", "p99 us", "vlog MB"});
  const bool json = !config.json_path.empty();

  for (const int64_t threshold : {int64_t{0}, sep_threshold}) {
    const char* mode = threshold == 0 ? "inline" : "separated";
    MemEnv env;
    FloDbOptions options;
    options.memory_budget_bytes = config.memory_bytes;
    options.disk.env = &env;
    options.disk.path = "/bench";
    // Shrunken level targets (fig_compaction's trick): the ~10x-memory
    // dataset spans L1..L3, so inline churn pays the full leveled
    // rewrite cascade that separation avoids.
    options.disk.sstable_target_bytes = 512 << 10;
    options.disk.l1_max_bytes = 2 << 20;
    options.disk.compaction_threads = 1;
    options.disk.value_separation_threshold = threshold;
    options.disk.vlog_file_target_bytes = 1 << 20;
    std::unique_ptr<FloDB> db;
    if (Status s = FloDB::Open(options, &db); !s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }

    // Phase 1: full load (spread order), quiesced.
    const std::string value(config.value_bytes, 'v');
    for (uint64_t i = 0; i < config.key_space; ++i) {
      if (!db->Put(Slice(EncodeKey(SpreadKey(i, config.key_space))), Slice(value)).ok()) {
        fprintf(stderr, "load failed\n");
        return 1;
      }
    }
    if (!db->FlushAll().ok()) {
      fprintf(stderr, "load flush failed\n");
      return 1;
    }
    const StoreStats loaded = db->GetStats();

    // Phase 2: zipfian overwrite churn.
    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    uint64_t churn_writes = 0;
    const uint64_t churn_start = NowNanos();
    std::thread writer([&] {
      // Uniform churn: zipfian writes mostly collapse inside the memory
      // component (hot keys overwrite in place before ever persisting),
      // which hides exactly the leveled rewrite cascade this figure
      // measures. Uniform overwrites make every churn byte reach the
      // disk layer; the READS below are the skewed part.
      Random64 rng(config.key_space ^ 0x5eed);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = SpreadKey(rng.Uniform(config.key_space), config.key_space);
        if (!db->Put(Slice(EncodeKey(key)), Slice(value)).ok()) {
          failed.store(true);
          break;
        }
        ++churn_writes;
      }
    });
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(config.seconds * 1000)));
    stop.store(true);
    writer.join();
    const double churn_elapsed = SecondsSince(churn_start);
    if (failed.load() || !db->FlushAll().ok()) {
      fprintf(stderr, "churn phase failed\n");
      return 1;
    }
    // Drain vlog GC to the same quiesced steady state FlushAll gives
    // compaction, so the read phase measures reads, not background GC.
    for (bool performed = true; performed;) {
      performed = false;
      if (!db->CompactValueLogGarbage(&performed).ok()) {
        fprintf(stderr, "vlog GC drain failed\n");
        return 1;
      }
    }

    // Churn-only write amplification, vlog appends included: every byte
    // the storage layer wrote on behalf of the churn's user bytes.
    const StoreStats churned = db->GetStats();
    const double user_bytes = static_cast<double>(churn_writes) *
                              static_cast<double>(kEncodedKeyBytes + config.value_bytes);
    const double storage_bytes = static_cast<double>(
        (churned.disk.bytes_flushed - loaded.disk.bytes_flushed) +
        (churned.disk.bytes_compacted_out - loaded.disk.bytes_compacted_out) +
        (churned.disk.vlog_bytes_written - loaded.disk.vlog_bytes_written));
    const double write_amp = user_bytes > 0 ? storage_bytes / user_bytes : 0.0;

    // Phase 3: zipfian point reads with per-op latency.
    std::vector<uint64_t> latencies_us;
    latencies_us.reserve(1 << 20);
    {
      ZipfianGenerator zipf(config.key_space, zipf_theta);
      Random64 rng(config.key_space ^ 0xbeef);
      std::string read_value;
      const uint64_t read_start = NowNanos();
      const uint64_t deadline =
          read_start + static_cast<uint64_t>(config.seconds * 1e9);
      while (NowNanos() < deadline) {
        const uint64_t key = SpreadKey(zipf.Next(rng), config.key_space);
        const uint64_t op_start = NowNanos();
        const Status s = db->Get(Slice(EncodeKey(key)), &read_value);
        if (!s.ok()) {
          fprintf(stderr, "read failed: %s\n", s.ToString().c_str());
          return 1;
        }
        latencies_us.push_back((NowNanos() - op_start) / 1000);
      }
    }
    if (latencies_us.empty()) {
      fprintf(stderr, "no reads completed\n");
      return 1;
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const double reads = static_cast<double>(latencies_us.size());
    const double reads_per_sec = reads / config.seconds;
    const double p50_us = static_cast<double>(latencies_us[latencies_us.size() / 2]);
    const double p99_us =
        static_cast<double>(latencies_us[latencies_us.size() * 99 / 100]);
    const double writes_per_sec = static_cast<double>(churn_writes) / churn_elapsed;
    const double vlog_mb = static_cast<double>(churned.disk.vlog_bytes) / (1 << 20);

    report.Row({mode, Report::Fmt(writes_per_sec, 0), Report::Fmt(write_amp, 2),
                Report::Fmt(reads_per_sec, 0), Report::Fmt(p50_us, 1), Report::Fmt(p99_us, 1),
                Report::Fmt(vlog_mb, 1)});
    report.Csv({mode, Report::Fmt(writes_per_sec, 1), Report::Fmt(write_amp, 3),
                Report::Fmt(reads_per_sec, 1), Report::Fmt(p50_us, 1), Report::Fmt(p99_us, 1)});
    if (json) {
      // Mode-suffixed store labels (the fig10 "FloDB-nocache" idiom) so
      // check_bench_regression.py's (store, threads, shards) key keeps
      // the two rows distinct.
      report.JsonRow(
          {{"store", threshold == 0 ? "FloDB-inline" : "FloDB-vlog"}, {"mode", mode}},
          {{"threads", 1.0},
           {"shards", 1.0},
           {"mops", reads_per_sec / 1e6},
           {"threshold", static_cast<double>(threshold)},
           {"keys", static_cast<double>(config.key_space)},
           {"value_bytes", static_cast<double>(config.value_bytes)},
           {"churn_writes", static_cast<double>(churn_writes)},
           {"write_amp", write_amp},
           {"reads", reads},
           {"read_p50_us", p50_us},
           {"read_p99_us", p99_us},
           {"vlog_bytes_written",
            static_cast<double>(churned.disk.vlog_bytes_written)},
           {"vlog_gc_rewrites", static_cast<double>(churned.disk.vlog_gc_rewrites)},
           {"vlog_garbage_bytes", static_cast<double>(churned.disk.vlog_garbage_bytes)}});
    }
  }
  report.WriteJson(config.json_path);
  return 0;
}
