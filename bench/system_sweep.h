// Shared driver for the system-comparison figures (9-13): every store,
// swept over thread counts, with a per-figure workload and initialization
// recipe. Prints one column per store, one row per thread count, plus CSV.

#ifndef FLODB_BENCH_SYSTEM_SWEEP_H_
#define FLODB_BENCH_SYSTEM_SWEEP_H_

#include <functional>

#include "bench_common.h"

namespace flodb::bench {

enum class InitRecipe { kFresh, kHalfRandom, kFullSequential };

struct SweepSpec {
  const char* figure_id;
  const char* title;
  WorkloadSpec workload;
  InitRecipe init = InitRecipe::kHalfRandom;
  bool two_role = false;
  WorkloadSpec writer_spec;
  // Metric extractor; default = Mops/s.
  std::function<double(const DriverResult&)> metric;
  const char* metric_name = "Mops/s";
};

inline void RunSystemSweep(const SweepSpec& spec) {
  BenchConfig config = BenchConfig::FromEnv();
  Report report(spec.figure_id, spec.title);

  std::vector<std::string> header = {"threads"};
  for (StoreId id : AllStores()) {
    header.push_back(StoreName(id));
  }
  report.Header(header);

  auto metric = spec.metric ? spec.metric
                            : [](const DriverResult& r) { return r.MopsPerSec(); };

  for (int threads : config.threads) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (StoreId id : AllStores()) {
      StoreInstance instance = OpenStore(id, config, config.memory_bytes);
      switch (spec.init) {
        case InitRecipe::kFresh:
          break;
        case InitRecipe::kHalfRandom:
          LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                          config.value_bytes);
          instance->FlushAll();
          break;
        case InitRecipe::kFullSequential:
          LoadSequential(instance.get(), config.key_space, config.value_bytes);
          instance->FlushAll();
          break;
      }

      WorkloadSpec workload = spec.workload;
      workload.key_space = config.key_space;
      workload.value_bytes = config.value_bytes;

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;
      driver.two_role = spec.two_role;
      driver.writer_spec = spec.writer_spec;
      driver.writer_spec.key_space = config.key_space;
      driver.writer_spec.value_bytes = config.value_bytes;

      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      const double value = metric(result);
      row.push_back(Report::Fmt(value, 3));
      report.Csv({std::to_string(threads), StoreName(id), Report::Fmt(value, 4)});
    }
    report.Row(row);
  }
}

}  // namespace flodb::bench

#endif  // FLODB_BENCH_SYSTEM_SWEEP_H_
