// Shared driver for the system-comparison figures (9-13): every store,
// swept over thread counts, with a per-figure workload and initialization
// recipe. Prints one column per store, one row per thread count, plus CSV.
//
// FLODB_BENCH_SHARDS=1,4 adds one FloDB column per extra shard count
// (range-partitioned ShardedKVStore), so the sharding scale lever shows
// up directly next to the baselines. With a JSON sink (--json out.json /
// FLODB_BENCH_JSON) every cell also records throughput and p50/p99
// latencies for CI regression tracking.

#ifndef FLODB_BENCH_SYSTEM_SWEEP_H_
#define FLODB_BENCH_SYSTEM_SWEEP_H_

#include <functional>

#include "bench_common.h"

namespace flodb::bench {

enum class InitRecipe { kFresh, kHalfRandom, kFullSequential };

struct SweepSpec {
  const char* figure_id;
  const char* title;
  WorkloadSpec workload;
  InitRecipe init = InitRecipe::kHalfRandom;
  bool two_role = false;
  WorkloadSpec writer_spec;
  // Metric extractor; default = Mops/s.
  std::function<double(const DriverResult&)> metric;
  const char* metric_name = "Mops/s";
};

// One column of the sweep: a store kind plus (for FloDB) a shard count
// and an optional block-cache-size override (-1 = DiskOptions default).
struct SweepColumn {
  StoreId id;
  int shards = 1;
  long long cache_bytes = -1;
  std::string name;
};

inline std::vector<SweepColumn> SweepColumns(const BenchConfig& config) {
  std::vector<SweepColumn> columns;
  for (StoreId id : AllStores()) {
    if (id == StoreId::kFloDB) {
      for (int shards : config.shard_counts) {
        SweepColumn column{id, shards, -1, StoreName(id)};
        if (shards > 1) {
          column.name += "-" + std::to_string(shards) + "sh";
        }
        columns.push_back(std::move(column));
      }
      // FLODB_BENCH_CACHE: one extra single-shard FloDB column per listed
      // block-cache size, so the cache lever shows up next to the default
      // (CI pins "0" for a FloDB-nocache column in the fig10 gate).
      for (long long cache : config.cache_bytes_list) {
        SweepColumn column{id, 1, cache, StoreName(id)};
        column.name +=
            cache == 0 ? "-nocache" : "-cache" + std::to_string(cache >> 10) + "KB";
        columns.push_back(std::move(column));
      }
    } else {
      columns.push_back(SweepColumn{id, 1, -1, StoreName(id)});
    }
  }
  return columns;
}

inline void RunSystemSweep(const SweepSpec& spec, const BenchConfig& config) {
  Report report(spec.figure_id, spec.title);
  const std::vector<SweepColumn> columns = SweepColumns(config);
  const bool json = !config.json_path.empty();

  std::vector<std::string> header = {"threads"};
  for (const SweepColumn& column : columns) {
    header.push_back(column.name);
  }
  report.Header(header);

  auto metric = spec.metric ? spec.metric
                            : [](const DriverResult& r) { return r.MopsPerSec(); };

  for (int threads : config.threads) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const SweepColumn& column : columns) {
      StoreInstance instance =
          OpenStore(column.id, config, config.memory_bytes, column.shards, column.cache_bytes);
      switch (spec.init) {
        case InitRecipe::kFresh:
          break;
        case InitRecipe::kHalfRandom:
          LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                          config.value_bytes);
          instance->FlushAll();
          break;
        case InitRecipe::kFullSequential:
          LoadSequential(instance.get(), config.key_space, config.value_bytes);
          instance->FlushAll();
          break;
      }

      WorkloadSpec workload = spec.workload;
      workload.key_space = config.key_space;
      workload.value_bytes = config.value_bytes;

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;
      driver.two_role = spec.two_role;
      driver.writer_spec = spec.writer_spec;
      driver.writer_spec.key_space = config.key_space;
      driver.writer_spec.value_bytes = config.value_bytes;
      driver.record_latency = json;

      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      const double value = metric(result);
      row.push_back(Report::Fmt(value, 3));
      report.Csv({std::to_string(threads), column.name, Report::Fmt(value, 4)});
      if (json) {
        const StoreStats stats = instance->GetStats();
        report.JsonRow({{"store", column.name}},
                       {{"threads", static_cast<double>(threads)},
                        {"shards", static_cast<double>(column.shards)},
                        {"mops", value},
                        {"read_p50_ns", static_cast<double>(result.read_p50)},
                        {"read_p99_ns", static_cast<double>(result.read_p99)},
                        {"write_p50_ns", static_cast<double>(result.write_p50)},
                        {"write_p99_ns", static_cast<double>(result.write_p99)},
                        {"block_cache_hit_rate", stats.disk.BlockCacheHitRate()}});
      }
    }
    report.Row(row);
  }
  report.WriteJson(config.json_path);
}

}  // namespace flodb::bench

#endif  // FLODB_BENCH_SYSTEM_SWEEP_H_
