// Shared driver for Figures 3 and 4: RocksDB-like store, readwhilewriting
// workload (N readers + 1 writer), median read/write latency as the
// memory component grows, normalized to the smallest size.

#ifndef FLODB_BENCH_LATENCY_VS_MEMORY_H_
#define FLODB_BENCH_LATENCY_VS_MEMORY_H_

#include "bench_common.h"

namespace flodb::bench {

inline void RunLatencyVsMemory(const char* figure_id, const char* title,
                               BaselineMemTable::Kind kind) {
  BenchConfig config = BenchConfig::FromEnv();
  Report report(figure_id, title);
  report.Header({"memory", "read_p50_us", "write_p50_us", "read_norm", "write_norm"});

  // Stand-ins for the paper's 128MB..8GB sweep.
  const std::vector<size_t> sizes = {256u << 10, 512u << 10, 1u << 20, 2u << 20,
                                     4u << 20,   8u << 20};
  double read_base = 0, write_base = 0;
  for (size_t memory : sizes) {
    StoreInstance instance;
    instance.mem_env = std::make_unique<MemEnv>();
    instance.throttled_env =
        std::make_unique<ThrottledEnv>(instance.mem_env.get(), config.disk_mbps << 20);
    DiskOptions disk;
    disk.env = instance.throttled_env.get();
    disk.path = "/bench";
    disk.sstable_target_bytes = 1 << 20;
    RocksDBLikeConfig rocks;
    rocks.memtable_bytes = memory;
    rocks.memtable_kind = kind;
    Status s = OpenRocksDBLike(rocks, disk, &instance.store);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      abort();
    }

    // Paper: readwhilewriting on a 1M-entry database (scaled).
    LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                    config.value_bytes);

    WorkloadSpec readers;
    readers.get_fraction = 1.0;
    readers.key_space = config.key_space;
    readers.value_bytes = config.value_bytes;
    WorkloadSpec writer;
    writer.put_fraction = 1.0;
    writer.key_space = config.key_space;
    writer.value_bytes = config.value_bytes;

    DriverOptions driver;
    driver.threads = 4;  // paper: 8 readers + 1 writer (scaled)
    driver.seconds = config.seconds;
    driver.record_latency = true;
    driver.two_role = true;
    driver.writer_spec = writer;

    const DriverResult result = RunWorkload(instance.get(), readers, driver);
    const double read_us = static_cast<double>(result.read_p50) / 1000.0;
    const double write_us = static_cast<double>(result.write_p50) / 1000.0;
    if (read_base == 0) {
      read_base = read_us > 0 ? read_us : 1;
      write_base = write_us > 0 ? write_us : 1;
    }
    char mem_label[32];
    snprintf(mem_label, sizeof(mem_label), "%zuKB", memory >> 10);
    report.Row({mem_label, Report::Fmt(read_us, 2), Report::Fmt(write_us, 2),
                Report::Fmt(read_us / read_base, 2), Report::Fmt(write_us / write_base, 2)});
    report.Csv({mem_label, Report::Fmt(read_us, 3), Report::Fmt(write_us, 3)});
  }
}

}  // namespace flodb::bench

#endif  // FLODB_BENCH_LATENCY_VS_MEMORY_H_
