// Sync-write throughput vs writer count, group commit A/B: the same
// sync=true workload against FloDB with `sync_coalesce` ON (the leader's
// one fsync covers every queued writer, DESIGN.md §10) and OFF (one
// fsync per writer, serialized — the pre-group-commit pipeline). MemEnv
// makes fsync free, which would hide the entire effect, so the store
// runs over a FaultInjectionEnv with an injected fsync latency standing
// in for a real device.
//
// Expected shape: per-writer fsync is flat in the writer count (every
// sync serializes on the log), coalescing scales with it until the fsync
// is amortized away — the acceptance bar is >= 2x at 8 writers, and
// syncs/write well under 1. CI gates both (ci/check_sync_coalesce.py)
// plus a conservative absolute floor (ci/bench_baselines/).
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_THREADS
// (default "1,2,4,8" here), FLODB_BENCH_KEYS, FLODB_BENCH_VALUE.
//   FLODB_BENCH_SYNC_MICROS  injected fsync latency (default 100)
//   --json out.json          machine-readable rows (also FLODB_BENCH_JSON)

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/disk/fault_env.h"

int main(int argc, char** argv) {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  if (getenv("FLODB_BENCH_THREADS") == nullptr) {
    config.threads = {1, 2, 4, 8};
  }
  const int sync_micros = static_cast<int>(EnvInt("FLODB_BENCH_SYNC_MICROS", 100));

  const std::string title = "sync=true write throughput vs writer count, " +
                            std::to_string(sync_micros) + "us injected fsync, coalesce on/off";
  Report report("fig_sync_write", title);
  report.Header({"mode", "threads", "writes/s", "wal syncs", "syncs/write"});

  const bool json = !config.json_path.empty();
  for (const bool coalesce : {true, false}) {
    for (const int threads : config.threads) {
      MemEnv base_env;
      FaultInjectionEnv fault_env(&base_env);
      fault_env.SetSyncDelayMicros(sync_micros);

      FloDbOptions options;
      options.memory_budget_bytes = config.memory_bytes;
      options.disk.env = &fault_env;
      options.disk.path = "/bench";
      options.disk.sstable_target_bytes = 1 << 20;
      options.enable_wal = true;
      options.sync_coalesce = coalesce;
      std::unique_ptr<FloDB> db;
      if (Status s = FloDB::Open(options, &db); !s.ok()) {
        fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> total_writes{0};
      std::atomic<bool> failed{false};
      const uint64_t start = NowNanos();
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          WriteOptions synced;
          synced.sync = true;
          const std::string value(config.value_bytes, 'v');
          uint64_t local = 0;
          // Per-thread key stripes; the workload is the fsync, not key
          // contention.
          for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
            const uint64_t key =
                SpreadKey(static_cast<uint64_t>(t) * 1'000'000 + (i % config.key_space),
                          config.key_space * 8);
            if (!db->Put(synced, Slice(EncodeKey(key)), Slice(value)).ok()) {
              failed.store(true);
              break;
            }
            ++local;
          }
          total_writes.fetch_add(local, std::memory_order_relaxed);
        });
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(config.seconds * 1000)));
      stop.store(true);
      for (std::thread& w : workers) {
        w.join();
      }
      const double elapsed = SecondsSince(start);
      if (failed.load()) {
        fprintf(stderr, "sync write failed mid-run\n");
        return 1;
      }

      const StoreStats stats = db->GetStats();
      const uint64_t writes = total_writes.load();
      const double writes_per_sec = static_cast<double>(writes) / elapsed;
      const double syncs_per_write =
          writes > 0 ? static_cast<double>(stats.wal_syncs) / static_cast<double>(writes) : 0.0;
      const char* mode = coalesce ? "coalesce" : "per-writer";
      report.Row({mode, std::to_string(threads), Report::Fmt(writes_per_sec, 0),
                  std::to_string(stats.wal_syncs), Report::Fmt(syncs_per_write, 3)});
      report.Csv({mode, std::to_string(threads), Report::Fmt(writes_per_sec, 1),
                  Report::Fmt(syncs_per_write, 4)});
      if (json) {
        report.JsonRow({{"store", coalesce ? "FloDB-sync-coalesce" : "FloDB-sync-per-writer"}},
                       {{"threads", static_cast<double>(threads)},
                        {"shards", 1.0},
                        {"mops", writes_per_sec / 1e6},
                        {"wal_syncs", static_cast<double>(stats.wal_syncs)},
                        {"writes", static_cast<double>(writes)},
                        {"syncs_per_write", syncs_per_write}});
      }
    }
  }
  report.WriteJson(config.json_path);
  return 0;
}
