// Figure 12: one writer thread, all remaining threads read. Throughput
// vs total thread count. Expected shape: read-scalable systems (FloDB,
// RocksDB) grow with thread count; mutex-bracketed readers do not.

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  SweepSpec spec;
  spec.figure_id = "fig12";
  spec.title = "one writer + N-1 readers, throughput vs threads";
  spec.workload.get_fraction = 1.0;  // the N-1 readers
  spec.init = InitRecipe::kHalfRandom;
  spec.two_role = true;
  spec.writer_spec.put_fraction = 1.0;
  RunSystemSweep(spec, flodb::bench::BenchConfig::FromEnv(argc, argv));
  return 0;
}
