// Figure 11: balanced mixed workload (50% reads, 25% inserts, 25%
// deletes), half-random init, throughput vs threads. Expected shape:
// FloDB leads at every thread count.

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  SweepSpec spec;
  spec.figure_id = "fig11";
  spec.title = "mixed 50r/25i/25d, throughput vs threads";
  spec.workload.get_fraction = 0.5;
  spec.workload.put_fraction = 0.25;
  spec.workload.delete_fraction = 0.25;
  spec.init = InitRecipe::kHalfRandom;
  RunSystemSweep(spec, flodb::bench::BenchConfig::FromEnv(argc, argv));
  return 0;
}
