// Figure 7: raw concurrent skiplist (the Memtable substrate) on a mixed
// read-write workload, threads x dataset sizes. Expected shape:
// throughput falls as the dataset grows (O(log n) operations) and sits
// one-to-two orders of magnitude below the hash table of Figure 5.

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/mem/skiplist.h"

namespace flodb::bench {
namespace {

double RunPoint(uint64_t dataset, int threads, double seconds) {
  ConcurrentArena arena(4u << 20);
  ConcurrentSkipList list(&arena);

  KeyBuf buf;
  for (uint64_t i = 0; i < dataset / 2; ++i) {
    list.Insert(buf.Set(SpreadKey(i * 2, dataset)), Slice("12345678"), i + 1,
                ValueType::kValue);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> seq{dataset};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 99 + 3);
      KeyBuf kb;
      std::string value;
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = SpreadKey(rng.Uniform(dataset), dataset);
        if (rng.OneIn(2)) {
          list.Get(kb.Set(key), &value, nullptr, nullptr);
        } else {
          list.Insert(kb.Set(key), Slice("12345678"), seq.fetch_add(1), ValueType::kValue);
        }
        ++ops;
      }
      total_ops.fetch_add(ops);
    });
  }
  const uint64_t start = flodb::NowNanos();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(total_ops.load()) / flodb::SecondsSince(start) / 1e6;
}

}  // namespace
}  // namespace flodb::bench

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig07", "concurrent skiplist throughput (Mops/s), threads x dataset size");

  const std::vector<uint64_t> datasets = {32'000, 262'144, 1'048'576};
  std::vector<std::string> header = {"threads"};
  for (uint64_t d : datasets) {
    header.push_back(std::to_string(d / 1000) + "K");
  }
  report.Header(header);

  for (int threads : config.threads) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (uint64_t dataset : datasets) {
      const double mops = RunPoint(dataset, threads, config.seconds);
      row.push_back(Report::Fmt(mops, 2));
      report.Csv({std::to_string(threads), std::to_string(dataset), Report::Fmt(mops, 3)});
    }
    report.Row(row);
  }
  return 0;
}
