// §5.2 (text claim): "in all of our experiments, the ratio of fallback
// scans to total completed scans was less than 1%". Reproduced across a
// sweep of scan ranges, memory sizes and thread counts.

#include "bench_common.h"

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("stat_fallback", "FloDB fallback-scan rate across scan sweeps");
  report.Header({"scan_len", "memory", "threads", "scans", "restarts", "fallbacks", "rate%"});

  const int max_threads = config.threads.empty() ? 4 : config.threads.back();
  for (size_t scan_len : {10u, 100u, 1000u}) {
    for (size_t memory : {512u << 10, 2u << 20}) {
      for (int threads : {2, max_threads}) {
        StoreInstance instance = OpenStore(StoreId::kFloDB, config, memory);
        LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                        config.value_bytes);

        WorkloadSpec workload;
        workload.put_fraction = 0.95;
        workload.scan_fraction = 0.05;
        workload.scan_length = scan_len;
        workload.key_space = config.key_space;
        workload.value_bytes = config.value_bytes;

        DriverOptions driver;
        driver.threads = threads;
        driver.seconds = config.seconds;

        RunWorkload(instance.get(), workload, driver);
        const flodb::StoreStats stats = instance->GetStats();
        const double rate = stats.scans > 0 ? 100.0 * static_cast<double>(stats.fallback_scans) /
                                                  static_cast<double>(stats.scans)
                                            : 0;
        char mem_label[32];
        snprintf(mem_label, sizeof(mem_label), "%zuKB", memory >> 10);
        report.Row({std::to_string(scan_len), mem_label, std::to_string(threads),
                    std::to_string(stats.scans), std::to_string(stats.scan_restarts),
                    std::to_string(stats.fallback_scans), Report::Fmt(rate, 2)});
        report.Csv({std::to_string(scan_len), mem_label, std::to_string(threads),
                    Report::Fmt(rate, 3)});
      }
    }
  }
  return 0;
}
