// Batch-write micro-bench (v2 API): write throughput and group-commit
// amortization vs WriteBatch size, FloDB with the WAL enabled. Each data
// point commits the same total number of entries through batches of
// 1/8/64/512; the interesting columns are entries/s (one WAL record and
// one contiguous seq range per commit amortize the per-commit costs) and
// the WAL-record amortization ratio reported from StoreStats.
//
// With FLODB_BENCH_SHARDS listing counts > 1, each such count adds a
// sharded A/B pair: FloDB-sharded-2pc (cross_shard_atomic on — straddling
// batches pay per-shard prepares plus a commit marker) vs
// FloDB-sharded-legacy (independent per-shard commits). The gap between
// the two IS the price of cross-shard atomicity; CI gates it at <= 15%
// for batches >= 64 (ci/check_2pc_overhead.py), where the prepare/marker
// cost is amortized over the batch.
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_THREADS,
// FLODB_BENCH_KEYS, FLODB_BENCH_VALUE, FLODB_BENCH_MEMORY,
// FLODB_BENCH_DISK_MBPS, FLODB_BENCH_SHARDS.
//   --json out.json          machine-readable rows (also FLODB_BENCH_JSON)

#include "bench_common.h"

namespace {

constexpr size_t kBatchSizes[] = {1, 8, 64, 512};

}  // namespace

int main(int argc, char** argv) {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);

  // The store matrix: plain FloDB, plus a 2pc/legacy pair per sharded
  // count. `shards` <= 1 entries collapse onto the plain column.
  struct Column {
    const char* store;
    int shards;
    bool atomic;
  };
  std::vector<Column> columns = {{"FloDB", 1, false}};
  for (const int shards : config.shard_counts) {
    if (shards > 1) {
      columns.push_back({"FloDB-sharded-2pc", shards, true});
      columns.push_back({"FloDB-sharded-legacy", shards, false});
    }
  }

  Report report("fig_batch_write",
                "batched writes (WAL on), " + std::to_string(config.value_bytes) +
                    "B values, cross-shard 2pc vs legacy where sharded");
  report.Header({"store", "batch", "threads", "commits/s", "entries/s", "entries/record"});

  const bool json = !config.json_path.empty();
  for (const Column& column : columns) {
    for (const size_t batch_size : kBatchSizes) {
      for (const int threads : config.threads) {
        StoreInstance instance;
        instance.mem_env = std::make_unique<MemEnv>();
        instance.throttled_env =
            std::make_unique<ThrottledEnv>(instance.mem_env.get(), config.disk_mbps << 20);

        FloDbOptions options;
        options.memory_budget_bytes = config.memory_bytes;
        options.disk.env = instance.throttled_env.get();
        options.disk.path = "/bench";
        options.disk.sstable_target_bytes = 1 << 20;
        options.enable_wal = true;
        options.shards = column.shards;
        options.cross_shard_atomic = column.atomic;
        Status s;
        if (column.shards > 1) {
          std::unique_ptr<ShardedKVStore> db;
          s = ShardedKVStore::Open(options, &db);
          instance.store = std::move(db);
        } else {
          std::unique_ptr<FloDB> db;
          s = FloDB::Open(options, &db);
          instance.store = std::move(db);
        }
        if (!s.ok()) {
          fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
          return 1;
        }

        // Uniform keys: at 4 shards a 64-entry batch straddles with
        // near-certainty, so the sharded columns genuinely commit through
        // the cross-shard path (batch=1 stays on the fast path by design).
        WorkloadSpec spec;
        spec.batch_put_fraction = 1.0;
        spec.batch_entries = batch_size;
        spec.key_space = config.key_space;
        spec.value_bytes = config.value_bytes;

        DriverOptions driver;
        driver.threads = threads;
        driver.seconds = config.seconds;
        DriverResult result = RunWorkload(instance.get(), spec, driver);

        const StoreStats stats = instance.get()->GetStats();
        const double records = static_cast<double>(stats.wal_batch_records);
        const double amortization =
            records > 0 ? static_cast<double>(stats.batch_entries) / records : 0.0;
        const double commits_per_sec =
            static_cast<double>(result.batch_commits) / result.elapsed_seconds;
        const double entries_per_sec =
            static_cast<double>(result.puts) / result.elapsed_seconds;
        report.Row({column.store, std::to_string(batch_size), std::to_string(threads),
                    Report::Fmt(commits_per_sec, 0), Report::Fmt(entries_per_sec, 0),
                    Report::Fmt(amortization, 1)});
        report.Csv({column.store, std::to_string(batch_size), std::to_string(threads),
                    Report::Fmt(entries_per_sec, 1)});
        if (json) {
          report.JsonRow({{"store", column.store}},
                         {{"threads", static_cast<double>(threads)},
                          {"shards", static_cast<double>(column.shards)},
                          {"batch", static_cast<double>(batch_size)},
                          {"mops", entries_per_sec / 1e6},
                          {"commits_per_sec", commits_per_sec},
                          {"entries_per_record", amortization},
                          {"txn_commits", static_cast<double>(stats.txn_commits)},
                          {"txn_prepares", static_cast<double>(stats.txn_prepares)}});
        }
      }
    }
  }
  report.WriteJson(config.json_path);
  return 0;
}
