// Batch-write micro-bench (v2 API): write throughput and group-commit
// amortization vs WriteBatch size, FloDB with the WAL enabled. Each data
// point commits the same total number of entries through batches of
// 1/8/64/512; the interesting columns are entries/s (one WAL record and
// one contiguous seq range per commit amortize the per-commit costs) and
// the WAL-record amortization ratio reported from StoreStats.
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_THREADS,
// FLODB_BENCH_KEYS, FLODB_BENCH_VALUE, FLODB_BENCH_MEMORY,
// FLODB_BENCH_DISK_MBPS.

#include "bench_common.h"

namespace {

constexpr size_t kBatchSizes[] = {1, 8, 64, 512};

}  // namespace

int main() {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();

  printf("# fig_batch_write: FloDB batched writes (WAL on), %zuB values\n",
         config.value_bytes);
  printf("%-10s %-8s %12s %14s %16s\n", "batch", "threads", "commits/s", "entries/s",
         "entries/record");

  for (const size_t batch_size : kBatchSizes) {
    for (const int threads : config.threads) {
      StoreInstance instance;
      instance.mem_env = std::make_unique<MemEnv>();
      instance.throttled_env =
          std::make_unique<ThrottledEnv>(instance.mem_env.get(), config.disk_mbps << 20);

      FloDbOptions options;
      options.memory_budget_bytes = config.memory_bytes;
      options.disk.env = instance.throttled_env.get();
      options.disk.path = "/bench";
      options.disk.sstable_target_bytes = 1 << 20;
      options.enable_wal = true;
      std::unique_ptr<FloDB> db;
      if (Status s = FloDB::Open(options, &db); !s.ok()) {
        fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      instance.store = std::move(db);

      WorkloadSpec spec;
      spec.batch_put_fraction = 1.0;
      spec.batch_entries = batch_size;
      spec.key_space = config.key_space;
      spec.value_bytes = config.value_bytes;

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;
      DriverResult result = RunWorkload(instance.get(), spec, driver);

      const StoreStats stats = instance.get()->GetStats();
      const double records = static_cast<double>(stats.wal_batch_records);
      const double amortization =
          records > 0 ? static_cast<double>(stats.batch_entries) / records : 0.0;
      printf("%-10zu %-8d %12.0f %14.0f %16.1f\n", batch_size, threads,
             static_cast<double>(result.batch_commits) / result.elapsed_seconds,
             static_cast<double>(result.puts) / result.elapsed_seconds, amortization);
    }
  }
  return 0;
}
