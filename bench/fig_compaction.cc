// Leveled compaction under sustained overwrite churn: write-amp,
// space-amp, and read throughput while the compactor is busy.
//
// Two phases per writer count:
//   1. churn  — writers overwrite a fixed key space for the configured
//      duration, then FlushAll() quiesces compactions; write-amp =
//      (bytes flushed + compaction output bytes) / user bytes and
//      space-amp = on-disk bytes / live-data estimate are measured at
//      the quiesced steady state;
//   2. read-under-churn — one writer keeps overwriting while the same
//      number of reader threads issue point Gets; read mops is the
//      number CI gates (ci/check_write_amp.py also bounds both
//      amplification factors).
//
// Without leveled compaction this workload degrades without bound: every
// overwrite round adds a full copy of the key space (space-amp ~= number
// of rounds) and reads wade through every run. The shrunken level
// targets below force the full L0 -> L1 -> L2 pipeline at bench scale.
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_THREADS
// (default "1,4"), FLODB_BENCH_KEYS, FLODB_BENCH_VALUE.
//   FLODB_BENCH_L1_MB        L1 size target in MB (default 2)
//   FLODB_BENCH_LEVEL_RATIO  level size multiplier (default 4)
//   --json out.json          machine-readable rows (also FLODB_BENCH_JSON)

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"

int main(int argc, char** argv) {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  if (getenv("FLODB_BENCH_THREADS") == nullptr) {
    config.threads = {1, 4};
  }
  const uint64_t l1_mb = static_cast<uint64_t>(EnvInt("FLODB_BENCH_L1_MB", 2));
  const int level_ratio = static_cast<int>(EnvInt("FLODB_BENCH_LEVEL_RATIO", 4));

  Report report("fig_compaction",
                "overwrite churn: write-amp, space-amp, reads under compaction");
  report.Header(
      {"threads", "writes/s", "write_amp", "space_amp", "read mops", "files/level"});
  const bool json = !config.json_path.empty();

  for (const int threads : config.threads) {
    MemEnv env;
    FloDbOptions options;
    options.memory_budget_bytes = config.memory_bytes;
    options.disk.env = &env;
    options.disk.path = "/bench";
    options.disk.sstable_target_bytes = 1 << 20;
    options.disk.l1_max_bytes = l1_mb << 20;
    options.disk.level_size_multiplier = level_ratio;
    options.disk.compaction_threads = 1;
    std::unique_ptr<FloDB> db;
    if (Status s = FloDB::Open(options, &db); !s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }

    // Phase 1: overwrite churn.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> total_writes{0};
    std::atomic<bool> failed{false};
    const std::string value(config.value_bytes, 'v');
    auto churn_writer = [&](int t) {
      uint64_t local = 0;
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const uint64_t key = SpreadKey((static_cast<uint64_t>(t) * 7'919 + i) % config.key_space,
                                       config.key_space);
        if (!db->Put(Slice(EncodeKey(key)), Slice(value)).ok()) {
          failed.store(true);
          break;
        }
        ++local;
      }
      total_writes.fetch_add(local, std::memory_order_relaxed);
    };
    const uint64_t churn_start = NowNanos();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(churn_writer, t);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(config.seconds * 1000)));
    stop.store(true);
    for (std::thread& w : workers) {
      w.join();
    }
    const double churn_elapsed = SecondsSince(churn_start);
    if (failed.load() || !db->FlushAll().ok()) {
      fprintf(stderr, "churn phase failed\n");
      return 1;
    }

    // Steady-state amplification, measured with compactions quiesced.
    const StoreStats stats = db->GetStats();
    const uint64_t writes = total_writes.load();
    const double writes_per_sec = static_cast<double>(writes) / churn_elapsed;
    const double user_bytes =
        static_cast<double>(writes) * static_cast<double>(8 + config.value_bytes);
    const double write_amp =
        user_bytes > 0
            ? static_cast<double>(stats.disk.bytes_flushed + stats.disk.bytes_compacted_out) /
                  user_bytes
            : 0.0;
    uint64_t disk_bytes = 0;
    for (const uint64_t b : stats.disk.bytes_per_level) {
      disk_bytes += b;
    }
    const uint64_t live_keys = std::min<uint64_t>(writes, config.key_space);
    const double live_bytes =
        static_cast<double>(live_keys) * static_cast<double>(8 + config.value_bytes);
    const double space_amp =
        live_bytes > 0 ? static_cast<double>(disk_bytes) / live_bytes : 0.0;
    std::string levels;
    for (const int count : stats.disk.files_per_level) {
      levels += (levels.empty() ? "" : "/") + std::to_string(count);
    }

    // Phase 2: point reads racing one churn writer.
    stop.store(false);
    std::atomic<uint64_t> total_reads{0};
    std::thread churn(churn_writer, threads);
    std::vector<std::thread> readers;
    for (int t = 0; t < threads; ++t) {
      readers.emplace_back([&, t] {
        uint64_t local = 0;
        std::string read_value;
        for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          const uint64_t key = SpreadKey(
              (static_cast<uint64_t>(t) * 104'729 + i) % config.key_space, config.key_space);
          const Status s = db->Get(Slice(EncodeKey(key)), &read_value);
          if (!s.ok() && !s.IsNotFound()) {
            failed.store(true);
            break;
          }
          ++local;
        }
        total_reads.fetch_add(local, std::memory_order_relaxed);
      });
    }
    const uint64_t read_start = NowNanos();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(config.seconds * 1000)));
    stop.store(true);
    churn.join();
    for (std::thread& r : readers) {
      r.join();
    }
    const double read_elapsed = SecondsSince(read_start);
    if (failed.load()) {
      fprintf(stderr, "read phase failed\n");
      return 1;
    }
    const uint64_t reads = total_reads.load();
    const double read_mops = static_cast<double>(reads) / read_elapsed / 1e6;

    report.Row({std::to_string(threads), Report::Fmt(writes_per_sec, 0),
                Report::Fmt(write_amp, 2), Report::Fmt(space_amp, 2),
                Report::Fmt(read_mops, 3), levels});
    report.Csv({std::to_string(threads), Report::Fmt(writes_per_sec, 1),
                Report::Fmt(write_amp, 3), Report::Fmt(space_amp, 3),
                Report::Fmt(read_mops, 4)});
    if (json) {
      report.JsonRow({{"store", "FloDB"}},
                     {{"threads", static_cast<double>(threads)},
                      {"shards", 1.0},
                      {"mops", read_mops},
                      {"write_amp", write_amp},
                      {"space_amp", space_amp},
                      {"writes", static_cast<double>(writes)},
                      {"reads", static_cast<double>(reads)},
                      {"compactions", static_cast<double>(stats.disk.compactions)}});
    }
  }
  report.WriteJson(config.json_path);
  return 0;
}
