// Figure 5: raw concurrent hash table (the Membuffer's CLHT-style table)
// on a mixed read-write workload, threads x dataset sizes. Expected
// shape: throughput roughly flat across dataset sizes (O(1) buckets) and
// one-to-two orders of magnitude above the skiplist (Figure 7).

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/mem/membuffer.h"

namespace flodb::bench {
namespace {

double RunPoint(uint64_t dataset, int threads, double seconds) {
  MemBuffer::Options options;
  options.capacity_bytes = static_cast<size_t>(dataset) * 96;  // never reject
  options.partition_bits = 4;
  options.avg_entry_bytes_hint = 48;
  MemBuffer buffer(options);

  // Preload half the keys.
  KeyBuf buf;
  for (uint64_t i = 0; i < dataset / 2; ++i) {
    buffer.Add(buf.Set(SpreadKey(i * 2, dataset)), Slice("12345678"), ValueType::kValue);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random64 rng(static_cast<uint64_t>(t) * 77 + 1);
      KeyBuf kb;
      std::string value;
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = SpreadKey(rng.Uniform(dataset), dataset);
        if (rng.OneIn(2)) {
          buffer.Get(kb.Set(key), &value, nullptr);
        } else {
          buffer.Add(kb.Set(key), Slice("12345678"), ValueType::kValue);
        }
        ++ops;
      }
      total_ops.fetch_add(ops);
    });
  }
  const uint64_t start = NowNanos();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(total_ops.load()) / SecondsSince(start) / 1e6;
}

}  // namespace
}  // namespace flodb::bench

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig05", "concurrent hash table throughput (Mops/s), threads x dataset size");

  // Stand-ins for the paper's 32K / 1M / 33M / 1B entries.
  const std::vector<uint64_t> datasets = {32'000, 262'144, 1'048'576};
  std::vector<std::string> header = {"threads"};
  for (uint64_t d : datasets) {
    header.push_back(std::to_string(d / 1000) + "K");
  }
  report.Header(header);

  for (int threads : config.threads) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (uint64_t dataset : datasets) {
      const double mops = RunPoint(dataset, threads, config.seconds);
      row.push_back(Report::Fmt(mops, 2));
      report.Csv({std::to_string(threads), std::to_string(dataset), Report::Fmt(mops, 3)});
    }
    report.Row(row);
  }
  return 0;
}
