// Figure 13: mixed scan-write workload — 95% updates, 5% scans of 100
// keys — reported as KEY throughput (each scan touches scan_length keys,
// as in Golan-Gueta et al.). Expected shape: FloDB on top;
// HyperLevelDB competitive (efficient compaction => few files to merge).

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  SweepSpec spec;
  spec.figure_id = "fig13";
  spec.title = "scan-write 95% update / 5% scan(100), key-throughput (Mkeys/s) vs threads";
  spec.workload.put_fraction = 0.95;
  spec.workload.scan_fraction = 0.05;
  spec.workload.scan_length = 100;
  spec.init = InitRecipe::kHalfRandom;
  spec.metric = [](const DriverResult& r) { return r.MkeysPerSec(); };
  spec.metric_name = "Mkeys/s";
  RunSystemSweep(spec, flodb::bench::BenchConfig::FromEnv(argc, argv));
  return 0;
}
