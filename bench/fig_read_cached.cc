// Read throughput vs block-cache size, uniform and zipfian key draws,
// after a full sequential load + flush (the fig10 on-disk layout). The
// cache lever this PR adds: with block_cache_bytes = 0 every Get pays
// the Env read + CRC + copy for its data block; with a warm cache the
// zipfian hot set is served from memory. Expected shape: the zipfian
// column takes off as soon as the cache holds the hot blocks; the
// uniform column needs the cache to approach the dataset size.
//
// JSON rows (one per cell) carry mops + the measured block-cache hit
// rate; ci/check_cache_hit_rate.py gates the zipfian hit rate in CI.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  Report report("fig_read_cached", "read-only throughput vs block cache size");

  std::vector<long long> cache_sizes = config.cache_bytes_list;
  if (cache_sizes.empty()) {
    cache_sizes = {0, 256 << 10, 1 << 20, 4 << 20, 16 << 20};
  }
  const int threads = config.threads.empty() ? 2 : config.threads.back();

  struct Dist {
    const char* name;
    KeyDistribution distribution;
  };
  const Dist dists[] = {{"uniform", KeyDistribution::kUniform},
                        {"zipfian", KeyDistribution::kZipfian}};

  report.Header({"cache", "uniform", "uni-hit%", "zipfian", "zipf-hit%"});

  // Per-distribution throughput at cache size 0 and at the last swept
  // size, for the closing speedup line.
  double baseline_mops[2] = {0, 0};
  double last_mops[2] = {0, 0};

  for (long long cache : cache_sizes) {
    char cache_label[32];
    if (cache == 0) {
      snprintf(cache_label, sizeof(cache_label), "off");
    } else {
      snprintf(cache_label, sizeof(cache_label), "%lldKB", cache >> 10);
    }
    std::vector<std::string> row = {cache_label};

    for (size_t d = 0; d < 2; ++d) {
      StoreInstance instance =
          OpenStore(StoreId::kFloDB, config, config.memory_bytes, /*shards=*/1, cache);
      LoadSequential(instance.get(), config.key_space, config.value_bytes);
      instance->FlushAll();

      WorkloadSpec workload;
      workload.get_fraction = 1.0;
      workload.key_space = config.key_space;
      workload.value_bytes = config.value_bytes;
      workload.distribution = dists[d].distribution;

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;

      // Warm-up pass (untimed, stats suppressed for the ratio below):
      // fills the cache with the workload's hot set so the measured pass
      // reflects steady state, not cold misses.
      DriverOptions warmup = driver;
      warmup.seconds = config.seconds * 0.5;
      warmup.read_options.fill_stats = false;
      RunWorkload(instance.get(), workload, warmup);

      const flodb::StoreStats before = instance->GetStats();
      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      const flodb::StoreStats after = instance->GetStats();

      const uint64_t hits = after.disk.block_cache_hits - before.disk.block_cache_hits;
      const uint64_t misses = after.disk.block_cache_misses - before.disk.block_cache_misses;
      const double hit_rate =
          hits + misses == 0 ? 0.0
                             : static_cast<double>(hits) / static_cast<double>(hits + misses);
      const double mops = result.MopsPerSec();
      if (cache == 0) {
        baseline_mops[d] = mops;
      }
      last_mops[d] = mops;

      row.push_back(Report::Fmt(mops, 3));
      row.push_back(Report::Fmt(hit_rate * 100, 1));
      report.Csv({cache_label, dists[d].name, Report::Fmt(mops, 4),
                  Report::Fmt(hit_rate, 4)});
      const std::string store_name =
          std::string("FloDB-") + dists[d].name + "-" + cache_label;
      report.JsonRow({{"store", store_name}, {"dist", dists[d].name}},
                     {{"threads", static_cast<double>(threads)},
                      {"shards", 1.0},
                      {"cache_bytes", static_cast<double>(cache)},
                      {"mops", mops},
                      {"hit_rate", hit_rate}});
    }
    report.Row(row);
  }

  // The acceptance lens: warm-cache speedup over cache-off per
  // distribution at the largest swept size.
  for (size_t d = 0; d < 2; ++d) {
    if (baseline_mops[d] > 0) {
      printf("# %s speedup at %lldKB cache vs cache-off: %.2fx\n", dists[d].name,
             cache_sizes.back() >> 10, last_mops[d] / baseline_mops[d]);
    }
  }
  report.WriteJson(config.json_path);
  return 0;
}
