// Sharded scaling: write throughput vs shard count at a fixed thread
// count. Not a paper figure — this measures the scale lever ABOVE the
// paper's design: N range-partitioned FloDB instances behind
// ShardedKVStore, each with its own Membuffer/Memtable/WAL/drain
// pipeline, so writer threads on different shards share no
// serialization point at all.
//
// Expected shape on a multi-core box: near-linear write scaling until
// shards ~ cores (the CI acceptance bar is >= 1.5x at shards=4 vs
// shards=1 on an 8-core runner), flat or slightly negative beyond that
// (per-shard memory slices shrink, so drains trigger more often).
//
//   FLODB_BENCH_SHARDS   comma list of shard counts  (default "1,2,4,8")
//   FLODB_BENCH_THREADS  thread counts; each is run  (default "4")
//   --json out.json      machine-readable rows (also FLODB_BENCH_JSON)
//
// When the sweep covers shards 1 and 4, the binary evaluates the
// acceptance bar (>= 1.5x at shards=4) itself — except on boxes with
// hardware_concurrency < 4, where splitting buys nothing and the bar is
// reported as skipped instead of failed. Set
// FLODB_BENCH_ENFORCE_SCALING=1 to turn a FAIL into exit 1 (off by
// default so slow shared runners don't flake the smoke job).

#include <thread>

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  if (getenv("FLODB_BENCH_SHARDS") == nullptr) {
    config.shard_counts = {1, 2, 4, 8};
  }
  if (getenv("FLODB_BENCH_THREADS") == nullptr) {
    config.threads = {4};
  }

  Report report("fig_sharded_scaling",
                "write-only (50% insert / 50% delete), throughput vs shard count");
  report.Header({"threads", "shards", "write Mops/s", "speedup vs 1 shard", "store"});

  WorkloadSpec workload;
  workload.put_fraction = 0.5;
  workload.delete_fraction = 0.5;
  workload.key_space = config.key_space;
  workload.value_bytes = config.value_bytes;

  const bool json = !config.json_path.empty();
  // Best shards=4-vs-1 speedup seen across the thread sweep, for the
  // acceptance-bar verdict below.
  double best_speedup_at_4 = -1.0;
  for (int threads : config.threads) {
    // Collect the whole sweep first: the speedup column is always
    // relative to the shards=1 row (falling back to the first row when 1
    // is not in the sweep), regardless of list order.
    struct Cell {
      int shards;
      std::string name;
      DriverResult result;
      double mops;
    };
    std::vector<Cell> cells;
    for (int shards : config.shard_counts) {
      StoreInstance instance = OpenStore(StoreId::kFloDB, config, config.memory_bytes, shards);

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;
      driver.record_latency = json;

      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      cells.push_back(Cell{shards, instance->Name(), result, result.WriteMopsPerSec()});
    }
    double baseline = cells.empty() ? 0 : cells.front().mops;
    for (const Cell& cell : cells) {
      if (cell.shards == 1) {
        baseline = cell.mops;
      }
    }
    for (const Cell& cell : cells) {
      const double speedup = baseline > 0 ? cell.mops / baseline : 0;
      if (cell.shards == 4 && speedup > best_speedup_at_4) {
        best_speedup_at_4 = speedup;
      }
      report.Row({std::to_string(threads), std::to_string(cell.shards), Report::Fmt(cell.mops, 3),
                  Report::Fmt(speedup, 2) + "x", cell.name});
      report.Csv({std::to_string(threads), std::to_string(cell.shards), Report::Fmt(cell.mops, 4),
                  Report::Fmt(speedup, 3)});
      if (json) {
        report.JsonRow({{"store", cell.name}},
                       {{"threads", static_cast<double>(threads)},
                        {"shards", static_cast<double>(cell.shards)},
                        {"mops", cell.mops},
                        {"speedup", speedup},
                        {"write_p50_ns", static_cast<double>(cell.result.write_p50)},
                        {"write_p99_ns", static_cast<double>(cell.result.write_p99)}});
      }
    }
  }
  report.WriteJson(config.json_path);

  // Acceptance bar: >= 1.5x write throughput at shards=4 vs shards=1.
  // Splitting one core four ways cannot scale, so don't pretend the bar
  // was measured there (ROADMAP: single-core containers show ~0.85x).
  if (best_speedup_at_4 >= 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4) {
      printf("ACCEPTANCE fig_sharded_scaling: skipped (single-core runner: "
             "hardware_concurrency=%u < 4)\n",
             cores);
    } else {
      const bool pass = best_speedup_at_4 >= 1.5;
      printf("ACCEPTANCE fig_sharded_scaling: %s (%.2fx at shards=4 vs shards=1, bar 1.50x, "
             "hardware_concurrency=%u)\n",
             pass ? "PASS" : "FAIL", best_speedup_at_4, cores);
      const char* enforce = getenv("FLODB_BENCH_ENFORCE_SCALING");
      if (!pass && enforce != nullptr && *enforce == '1') {
        return 1;
      }
    }
  }
  return 0;
}
