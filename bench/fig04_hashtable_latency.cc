// Figure 4: RocksDB-like store with a HASH TABLE memory component.
// readwhilewriting; median read and write latency vs memory component
// size. Expected shape: end-to-end write latency grows even faster than
// the skiplist's because flushes must collect + sort the whole component
// (linearithmic), stalling writers while the active table fills.

#include "latency_vs_memory.h"

int main() {
  flodb::bench::RunLatencyVsMemory(
      "fig04", "RocksDB-like hash memtable: latency vs memory size",
      flodb::BaselineMemTable::Kind::kHashTable);
  return 0;
}
