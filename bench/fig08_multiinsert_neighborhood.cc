// Figure 8: simple inserts vs 5-key multi-inserts as a function of key
// proximity ("neighborhood size": all keys of one multi-insert are within
// distance 2n of each other). Expected shape: multi-insert beats simple
// insert, and the advantage grows as the neighborhood shrinks (more path
// reuse between consecutive inserts).

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/mem/skiplist.h"

namespace flodb::bench {
namespace {

constexpr int kKeysPerBatch = 5;

// Returns keys/second (inserted), for either insert mode.
double RunPoint(uint64_t initial_size, uint64_t neighborhood, bool multi_insert,
                double seconds) {
  ConcurrentArena arena(4u << 20);
  ConcurrentSkipList list(&arena);

  // Initial population (paper: 100M elements; scaled).
  KeyBuf buf;
  for (uint64_t i = 0; i < initial_size; ++i) {
    list.Insert(buf.Set(SpreadKey(i, initial_size)), Slice("init"), i + 1, ValueType::kValue);
  }
  const uint64_t key_domain = initial_size;  // logical key space

  Random64 rng(1234);
  std::atomic<uint64_t> seq{initial_size + 1};
  uint64_t keys_done = 0;
  const uint64_t deadline = NowNanos() + static_cast<uint64_t>(seconds * 1e9);

  std::vector<uint64_t> batch_keys(kKeysPerBatch);
  std::vector<std::string> key_storage(kKeysPerBatch);
  std::vector<ConcurrentSkipList::BatchEntry> batch;
  while (NowNanos() < deadline) {
    // Draw 5 keys within a window of 2*neighborhood (0 = unbounded).
    const uint64_t window = neighborhood == 0 ? key_domain : 2 * neighborhood;
    const uint64_t base = rng.Uniform(key_domain > window ? key_domain - window : 1);
    for (int i = 0; i < kKeysPerBatch; ++i) {
      batch_keys[static_cast<size_t>(i)] = base + rng.Uniform(window);
    }
    std::sort(batch_keys.begin(), batch_keys.end());
    batch_keys.erase(std::unique(batch_keys.begin(), batch_keys.end()), batch_keys.end());

    if (multi_insert) {
      batch.clear();
      for (size_t i = 0; i < batch_keys.size(); ++i) {
        key_storage[i] = EncodeKey(SpreadKey(batch_keys[i], key_domain));
        batch.push_back(ConcurrentSkipList::BatchEntry{Slice(key_storage[i]), Slice("upd8"),
                                                       ValueType::kValue, seq.fetch_add(1)});
      }
      list.MultiInsert(batch);
    } else {
      for (size_t i = 0; i < batch_keys.size(); ++i) {
        list.Insert(buf.Set(SpreadKey(batch_keys[i], key_domain)), Slice("upd8"),
                    seq.fetch_add(1), ValueType::kValue);
      }
    }
    keys_done += batch_keys.size();
  }
  return static_cast<double>(keys_done) / seconds / 1e6;
}

}  // namespace
}  // namespace flodb::bench

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig08", "simple insert vs 5-key multi-insert by neighborhood size (Mops/s)");
  report.Header({"neighborhood", "simple_insert", "multi_insert", "speedup"});

  // The multi-insert advantage grows with the tower-descent depth, i.e.
  // with the initial list size relative to the neighborhood (paper: 100M
  // elements). Keep this as large as the host affords.
  const uint64_t initial =
      static_cast<uint64_t>(EnvInt("FLODB_BENCH_FIG8_INITIAL", 1'000'000));
  // 0 encodes the paper's "None" (whole key range).
  const std::vector<uint64_t> neighborhoods = {10, 100, 1000, 10'000, 0};
  for (uint64_t n : neighborhoods) {
    const double simple = RunPoint(initial, n, /*multi_insert=*/false, config.seconds);
    const double multi = RunPoint(initial, n, /*multi_insert=*/true, config.seconds);
    const std::string label = n == 0 ? "None" : std::to_string(n);
    report.Row({label, Report::Fmt(simple, 2), Report::Fmt(multi, 2),
                Report::Fmt(simple > 0 ? multi / simple : 0, 2)});
    report.Csv({label, Report::Fmt(simple, 3), Report::Fmt(multi, 3)});
  }
  return 0;
}
