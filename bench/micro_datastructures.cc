// google-benchmark micro suite over the substrates: coding, hashing,
// CRC32C, arena, bloom, Membuffer and skiplist hot paths. These anchor
// the system-level numbers (e.g. the hash-table vs skiplist gap behind
// Figures 5/7).

#include <benchmark/benchmark.h>

#include "flodb/bench_util/workload.h"
#include "flodb/common/arena.h"
#include "flodb/common/coding.h"
#include "flodb/common/hash.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/disk/bloom.h"
#include "flodb/disk/crc32c.h"
#include "flodb/mem/membuffer.h"
#include "flodb/mem/skiplist.h"

namespace flodb {
namespace {

void BM_VarintEncodeDecode(benchmark::State& state) {
  std::string buf;
  uint64_t v = 0;
  for (auto _ : state) {
    buf.clear();
    PutVarint64(&buf, v);
    uint64_t parsed;
    GetVarint64Ptr(buf.data(), buf.data() + buf.size(), &parsed);
    benchmark::DoNotOptimize(parsed);
    v = v * 31 + 7;
  }
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_Hash64(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'h');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(data.data(), data.size(), 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(8)->Arg(64)->Arg(4096);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'c');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096);

void BM_ArenaAllocate(benchmark::State& state) {
  ConcurrentArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.Allocate(48));
  }
}
BENCHMARK(BM_ArenaAllocate);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bloom(10);
  std::vector<std::string> key_strings;
  for (uint64_t i = 0; i < 10'000; ++i) {
    key_strings.push_back(EncodeKey(i));
  }
  std::vector<Slice> keys(key_strings.begin(), key_strings.end());
  std::string filter;
  bloom.CreateFilter(keys, &filter);
  uint64_t i = 0;
  KeyBuf buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.KeyMayMatch(buf.Set(i++ % 20'000), Slice(filter)));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_MemBufferAdd(benchmark::State& state) {
  MemBuffer::Options options;
  options.capacity_bytes = 64u << 20;
  MemBuffer buffer(options);
  Random64 rng(1);
  KeyBuf buf;
  const std::string value(64, 'v');
  for (auto _ : state) {
    buffer.Add(buf.Set(rng.Next()), Slice(value), ValueType::kValue);
  }
}
BENCHMARK(BM_MemBufferAdd);

void BM_MemBufferGet(benchmark::State& state) {
  MemBuffer::Options options;
  options.capacity_bytes = 64u << 20;
  MemBuffer buffer(options);
  KeyBuf buf;
  for (uint64_t i = 0; i < 100'000; ++i) {
    buffer.Add(buf.Set(bench::SpreadKey(i, 100'000)), Slice("12345678"), ValueType::kValue);
  }
  Random64 rng(2);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buffer.Get(buf.Set(bench::SpreadKey(rng.Uniform(100'000), 100'000)), &value, nullptr));
  }
}
BENCHMARK(BM_MemBufferGet);

void BM_SkipListInsert(benchmark::State& state) {
  ConcurrentArena arena(4u << 20);
  ConcurrentSkipList list(&arena);
  Random64 rng(3);
  KeyBuf buf;
  uint64_t seq = 1;
  for (auto _ : state) {
    list.Insert(buf.Set(rng.Next()), Slice("12345678"), seq++, ValueType::kValue);
  }
}
BENCHMARK(BM_SkipListInsert);

void BM_SkipListGet(benchmark::State& state) {
  ConcurrentArena arena(4u << 20);
  ConcurrentSkipList list(&arena);
  KeyBuf buf;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    list.Insert(buf.Set(bench::SpreadKey(i, n)), Slice("12345678"), i + 1, ValueType::kValue);
  }
  Random64 rng(4);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list.Get(buf.Set(bench::SpreadKey(rng.Uniform(n), n)), &value, nullptr, nullptr));
  }
}
BENCHMARK(BM_SkipListGet)->Arg(1'000)->Arg(100'000);

void BM_SkipListMultiInsert5(benchmark::State& state) {
  ConcurrentArena arena(4u << 20);
  ConcurrentSkipList list(&arena);
  KeyBuf buf;
  for (uint64_t i = 0; i < 100'000; ++i) {
    list.Insert(buf.Set(bench::SpreadKey(i, 100'000)), Slice("base"), i + 1,
                ValueType::kValue);
  }
  Random64 rng(5);
  uint64_t seq = 200'000;
  std::vector<std::string> keys(5);
  std::vector<ConcurrentSkipList::BatchEntry> batch;
  for (auto _ : state) {
    const uint64_t base = rng.Uniform(99'000);
    batch.clear();
    for (int i = 0; i < 5; ++i) {
      keys[static_cast<size_t>(i)] =
          EncodeKey(bench::SpreadKey(base + static_cast<uint64_t>(i) * 37 % 1000, 100'000));
    }
    std::sort(keys.begin(), keys.end());
    for (int i = 0; i < 5; ++i) {
      batch.push_back(ConcurrentSkipList::BatchEntry{
          Slice(keys[static_cast<size_t>(i)]), Slice("12345678"), ValueType::kValue, seq++});
    }
    list.MultiInsert(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5);
}
BENCHMARK(BM_SkipListMultiInsert5);

}  // namespace
}  // namespace flodb

BENCHMARK_MAIN();
