// Figure 10: read-only workload after sequential initialization,
// throughput vs thread count. Expected shape: FloDB and RocksDB scale
// (no global mutex on the read path); LevelDB and HyperLevelDB cap out
// early (two critical sections per Get).

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  SweepSpec spec;
  spec.figure_id = "fig10";
  spec.title = "read-only, sequential init, throughput vs threads";
  spec.workload.get_fraction = 1.0;
  spec.init = InitRecipe::kFullSequential;
  RunSystemSweep(spec, flodb::bench::BenchConfig::FromEnv(argc, argv));
  return 0;
}
