// Figure 17: ablation of FloDB's own memory component with persistence
// DISABLED (immutable Memtables are dropped), isolating the in-memory
// write path:
//   * "No HT"                — Membuffer disabled (classic single level)
//   * "HT, simple insert SL" — two levels, drain uses one insert per key
//   * "HT, multi-insert SL"  — two levels, drain uses skiplist multi-insert
// Also reports the fraction of updates completing directly in the
// Membuffer (the boxed numbers in the paper's figure). Expected shape:
// No-HT degrades with memory size; both HT variants scale; multi-insert
// beats simple insert, most visibly with a single writer thread.

#include "bench_common.h"

namespace flodb::bench {
namespace {

struct Variant {
  const char* name;
  bool membuffer;
  bool multi_insert;
};

double RunPoint(const Variant& variant, size_t memory, int threads, const BenchConfig& config,
                double* membuffer_fraction) {
  FloDbOptions options;
  options.memory_budget_bytes = memory;
  options.enable_membuffer = variant.membuffer;
  options.use_multi_insert = variant.multi_insert;
  options.enable_persistence = false;  // memory component only
  std::unique_ptr<FloDB> db;
  Status s = FloDB::Open(options, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    abort();
  }

  WorkloadSpec workload;
  workload.put_fraction = 1.0;
  workload.key_space = config.key_space * 4;
  workload.value_bytes = config.value_bytes;

  DriverOptions driver;
  driver.threads = threads;
  // Fixed-volume burst, like Figure 15: the figure isolates the memory
  // component, so the interesting regime is writes arriving faster than
  // the drain while the Membuffer still has room.
  const uint64_t burst_ops =
      static_cast<uint64_t>(EnvInt("FLODB_BENCH_BURST_OPS", 60'000));
  driver.ops_per_thread = burst_ops / static_cast<uint64_t>(threads);

  const DriverResult result = RunWorkload(db.get(), workload, driver);
  const StoreStats stats = db->GetStats();
  const uint64_t total = stats.membuffer_adds + stats.memtable_direct_adds;
  *membuffer_fraction =
      total > 0 ? static_cast<double>(stats.membuffer_adds) / static_cast<double>(total) : 0;
  return result.MopsPerSec();
}

}  // namespace
}  // namespace flodb::bench

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig17", "FloDB memory-component variants (persistence off)");
  report.Header({"config", "No_HT", "HT_simple", "HT_multi", "HT_multi_direct%"});

  const Variant variants[] = {
      {"No HT", false, false},
      {"HT, simple insert SL", true, false},
      {"HT, multi-insert SL", true, true},
  };

  struct Point {
    size_t memory;
    int threads;
  };
  const int max_threads = config.threads.empty() ? 4 : config.threads.back();
  const std::vector<Point> points = {
      {4u << 20, 1},             // single-writer column of the figure
      {4u << 20, max_threads},   // 1GB, 8t (scaled)
      {8u << 20, max_threads},   // 2GB, 8t
      {16u << 20, max_threads},  // 4GB, 8t
      {32u << 20, max_threads},  // 8GB, 8t
  };

  for (const Point& point : points) {
    char label[48];
    snprintf(label, sizeof(label), "%zuMB,%dt", point.memory >> 20, point.threads);
    std::vector<std::string> row = {label};
    double direct_fraction = 0;
    for (const Variant& variant : variants) {
      double fraction = 0;
      const double mops = RunPoint(variant, point.memory, point.threads, config, &fraction);
      row.push_back(Report::Fmt(mops, 3));
      if (variant.membuffer && variant.multi_insert) {
        direct_fraction = fraction;
      }
      report.Csv({label, variant.name, Report::Fmt(mops, 4), Report::Fmt(fraction * 100, 1)});
    }
    row.push_back(Report::Fmt(direct_fraction * 100, 1) + "%");
    report.Row(row);
  }
  return 0;
}
