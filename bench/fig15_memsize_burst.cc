// Figure 15: write-only BURST (short, so the run is not bound by steady-
// state persistence) vs memory component size, all systems. Expected
// shape: baselines degrade as memory grows (bigger skiplist, slower
// inserts); FloDB improves/holds (writes absorbed by the fast Membuffer).

#include "bench_common.h"

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig15", "write-only burst, throughput vs memory component size");

  std::vector<std::string> header = {"memory"};
  for (StoreId id : AllStores()) {
    header.push_back(StoreName(id));
  }
  report.Header(header);

  // Fixed-VOLUME burst (paper: a 10s burst "empirically chosen such that
  // the system is not limited to its steady-state write throughput"): the
  // written volume must straddle the memory sizes so larger components
  // absorb the whole burst at memory speed.
  const uint64_t burst_ops =
      static_cast<uint64_t>(EnvInt("FLODB_BENCH_BURST_OPS", 60'000));
  printf("# burst: %llu writes (~%llu KB) per data point\n",
         static_cast<unsigned long long>(burst_ops),
         static_cast<unsigned long long>(burst_ops * (config.value_bytes + 40) >> 10));

  // Stand-ins for the paper's 128MB..192GB sweep.
  const std::vector<size_t> sizes = {1u << 20, 2u << 20, 4u << 20, 8u << 20,
                                     16u << 20, 32u << 20};
  const int threads = config.threads.empty() ? 4 : config.threads.back();
  for (size_t memory : sizes) {
    char mem_label[32];
    snprintf(mem_label, sizeof(mem_label), "%zuKB", memory >> 10);
    std::vector<std::string> row = {mem_label};
    for (StoreId id : AllStores()) {
      StoreInstance instance = OpenStore(id, config, memory);

      WorkloadSpec workload;
      workload.put_fraction = 1.0;
      // Burst across a large key space so writes are mostly distinct keys.
      workload.key_space = config.key_space * 4;
      workload.value_bytes = config.value_bytes;

      DriverOptions driver;
      driver.threads = threads;
      driver.ops_per_thread = burst_ops / static_cast<uint64_t>(threads);

      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      row.push_back(Report::Fmt(result.MopsPerSec(), 3));
      report.Csv({mem_label, StoreName(id), Report::Fmt(result.MopsPerSec(), 4)});
    }
    report.Row(row);
  }
  return 0;
}
