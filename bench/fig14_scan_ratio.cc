// Figure 14: FloDB, impact of the scan ratio (2%..50%) on operation- and
// key-throughput at a fixed thread count. Expected shape: ops/s falls as
// the scan ratio rises (scans are heavier), while keys/s RISES (each scan
// contributes scan_length key accesses and fewer writes interfere).

#include "bench_common.h"

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig14", "FloDB: scan ratio vs operation- and key-throughput");
  report.Header({"scan_pct", "write_Mops", "scan_Mops", "total_Mops", "Mkeys/s"});

  const int threads = config.threads.empty() ? 4 : config.threads.back();
  for (double scan_pct : {0.02, 0.05, 0.10, 0.25, 0.50}) {
    StoreInstance instance = OpenStore(StoreId::kFloDB, config, config.memory_bytes);
    LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                    config.value_bytes);
    instance->FlushAll();

    WorkloadSpec workload;
    workload.put_fraction = 1.0 - scan_pct;
    workload.scan_fraction = scan_pct;
    workload.scan_length = 100;
    workload.key_space = config.key_space;
    workload.value_bytes = config.value_bytes;

    DriverOptions driver;
    driver.threads = threads;
    driver.seconds = config.seconds;

    const DriverResult result = RunWorkload(instance.get(), workload, driver);
    const std::string label = Report::Fmt(scan_pct * 100, 0) + "%";
    report.Row({label, Report::Fmt(result.WriteMopsPerSec(), 3),
                Report::Fmt(result.ScanMopsPerSec(), 3), Report::Fmt(result.MopsPerSec(), 3),
                Report::Fmt(result.MkeysPerSec(), 3)});
    report.Csv({label, Report::Fmt(result.WriteMopsPerSec(), 4),
                Report::Fmt(result.ScanMopsPerSec(), 4), Report::Fmt(result.MkeysPerSec(), 4)});
  }
  return 0;
}
