// Figure 3: RocksDB-like store with a SKIPLIST memory component.
// readwhilewriting; median read and write latency vs memory component
// size, normalized to the smallest size. Expected shape: write latency
// grows with the component size (O(log n) sorted inserts), read latency
// roughly flat (most reads served from disk).

#include "latency_vs_memory.h"

int main() {
  flodb::bench::RunLatencyVsMemory(
      "fig03", "RocksDB-like skiplist memtable: latency vs memory size",
      flodb::BaselineMemTable::Kind::kSkipList);
  return 0;
}
