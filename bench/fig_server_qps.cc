// Server QPS over loopback: connections x pipeline-depth sweep against a
// live flodb-server event loop (DESIGN.md §11). Each client connection
// drives closed-loop bursts of `depth` pipelined commands (alternating
// all-SET and all-GET bursts), so depth 1 measures per-command RTT and
// depth >= 8 measures how far the parser + WriteBatch folding amortize
// the per-command cost. Reported latency is the full burst round trip.
//
// The store runs over MemEnv with the WAL on: the pipelined SET bursts
// exercise the real group-commit write path while fsync stays free, so
// the figure isolates the serving layer rather than the disk.
//
// Env knobs (bench_common.h): FLODB_BENCH_SECONDS, FLODB_BENCH_THREADS
// (= client connections, default "1,2,4"), FLODB_BENCH_KEYS,
// FLODB_BENCH_VALUE.
//   FLODB_BENCH_PIPELINE  comma list of pipeline depths (default "1,8,32")
//   --json out.json       machine-readable rows (also FLODB_BENCH_JSON)

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "flodb/common/synchronization.h"
#include "flodb/bench_util/latency.h"
#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/net/resp_client.h"
#include "flodb/net/server.h"

int main(int argc, char** argv) {
  using namespace flodb;
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);
  const std::vector<int> depths = ParseIntList(getenv("FLODB_BENCH_PIPELINE"), {1, 8, 32});

  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = config.memory_bytes;
  options.enable_wal = true;
  options.disk.env = &env;
  options.disk.path = "/bench";
  options.disk.sstable_target_bytes = 1 << 20;
  std::unique_ptr<FloDB> db;
  if (Status s = FloDB::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  std::unique_ptr<Server> server;
  if (Status s = Server::Start(server_options, db.get(), &server); !s.ok()) {
    fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Report report("fig_server_qps", "flodb-server loopback QPS, connections x pipeline depth");
  report.Header({"conns", "pipeline", "ops/s", "burst p50 us", "burst p99 us", "folded"});

  const bool json = !config.json_path.empty();
  const std::string value(config.value_bytes, 'v');
  for (const int depth : depths) {
    for (const int conns : config.threads) {
      const ServerStats before = server->GetStats();
      std::atomic<bool> stop{false};
      std::atomic<uint64_t> total_ops{0};
      std::atomic<bool> failed{false};
      LatencyRecorder merged;
      flodb::Mutex merge_mu;

      std::vector<std::thread> clients;
      clients.reserve(static_cast<size_t>(conns));
      for (int c = 0; c < conns; ++c) {
        clients.emplace_back([&, c] {
          RespClient client;
          if (!client.Connect("127.0.0.1", server->port()).ok()) {
            failed.store(true);
            return;
          }
          LatencyRecorder local;
          RespReply reply;
          uint64_t ops = 0;
          for (uint64_t burst = 0; !stop.load(std::memory_order_relaxed); ++burst) {
            const bool writes = (burst % 2 == 0);
            const uint64_t t0 = NowNanos();
            for (int i = 0; i < depth; ++i) {
              const uint64_t key = SpreadKey(
                  (static_cast<uint64_t>(c) * 1'000'003 + burst * static_cast<uint64_t>(depth) +
                   static_cast<uint64_t>(i)) %
                      config.key_space,
                  config.key_space * 8);
              if (writes) {
                client.QueueCommand({"SET", EncodeKey(key), value});
              } else {
                client.QueueCommand({"GET", EncodeKey(key)});
              }
            }
            if (!client.Flush().ok()) {
              failed.store(true);
              return;
            }
            for (int i = 0; i < depth; ++i) {
              if (!client.ReadReply(&reply).ok() || reply.type == RespReply::Type::kError) {
                failed.store(true);
                return;
              }
            }
            local.Record(NowNanos() - t0);
            ops += static_cast<uint64_t>(depth);
          }
          total_ops.fetch_add(ops, std::memory_order_relaxed);
          flodb::MutexLock lock(merge_mu);
          merged.Merge(local);
        });
      }
      const uint64_t start = NowNanos();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(config.seconds * 1000)));
      stop.store(true);
      for (std::thread& t : clients) {
        t.join();
      }
      const double elapsed = SecondsSince(start);
      if (failed.load()) {
        fprintf(stderr, "client failed mid-run (conns=%d depth=%d)\n", conns, depth);
        return 1;
      }

      const ServerStats after = server->GetStats();
      const uint64_t batches = after.pipelined_batches - before.pipelined_batches;
      const uint64_t folded_writes = after.batched_write_commands - before.batched_write_commands;
      // Commands per WriteBatch commit: > 1 means pipelining actually
      // folded (the ISSUE acceptance signal for depth > 1).
      const double folded =
          batches > 0 ? static_cast<double>(folded_writes) / static_cast<double>(batches) : 0.0;
      const double ops_per_sec = static_cast<double>(total_ops.load()) / elapsed;
      const double p50_us = static_cast<double>(merged.PercentileNanos(50)) / 1e3;
      const double p99_us = static_cast<double>(merged.PercentileNanos(99)) / 1e3;

      report.Row({std::to_string(conns), std::to_string(depth), Report::Fmt(ops_per_sec, 0),
                  Report::Fmt(p50_us, 1), Report::Fmt(p99_us, 1), Report::Fmt(folded, 2)});
      report.Csv({std::to_string(conns), std::to_string(depth), Report::Fmt(ops_per_sec, 1),
                  Report::Fmt(p50_us, 2), Report::Fmt(p99_us, 2)});
      if (json) {
        // The regression gate keys rows on (store, threads, shards):
        // pipeline depth rides in the store name, connections in threads.
        report.JsonRow({{"store", "flodb-server-p" + std::to_string(depth)}},
                       {{"threads", static_cast<double>(conns)},
                        {"shards", 1.0},
                        {"mops", ops_per_sec / 1e6},
                        {"pipeline", static_cast<double>(depth)},
                        {"burst_p50_us", p50_us},
                        {"burst_p99_us", p99_us},
                        {"cmds_per_batch", folded}});
      }
    }
  }

  server->Shutdown();
  report.WriteJson(config.json_path);
  return 0;
}
