// Figure 9: write-only workload (50% inserts, 50% deletes) on a fresh
// store, throughput vs thread count, all systems. Expected shape: FloDB
// saturates the persistence bandwidth with one thread and stays on top;
// HyperLevelDB scales but below FloDB; RocksDB/LevelDB stay flat
// (single-writer queue). The dashed line of the paper — the persistence
// ceiling — is printed as an estimate from the disk throttle.

#include "system_sweep.h"

int main(int argc, char** argv) {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv(argc, argv);

  // Average persistence throughput: bandwidth / persisted entry footprint
  // (key + value + per-entry table overhead).
  const double entry_bytes = static_cast<double>(config.value_bytes) + 8 + 12;
  const double persist_mops =
      static_cast<double>(config.disk_mbps << 20) / entry_bytes / 1e6;
  printf("# estimated average persistence throughput: %.2f Mops/s (dashed line)\n",
         persist_mops);

  SweepSpec spec;
  spec.figure_id = "fig09";
  spec.title = "write-only (50% insert / 50% delete), throughput vs threads";
  spec.workload.put_fraction = 0.5;
  spec.workload.delete_fraction = 0.5;
  spec.init = InitRecipe::kFresh;  // paper: fresh store for write-only
  RunSystemSweep(spec, config);
  return 0;
}
