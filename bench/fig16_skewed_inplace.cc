// Figure 16: skewed mixed workload (98% of ops on 2% of the keys, 50%
// reads / 50% updates) vs memory component size. Expected shape: once the
// memory component exceeds the hot-set size, FloDB's IN-PLACE updates
// capture the entire hot set in memory and throughput takes off; the
// multi-versioned baselines keep filling memory with duplicates and
// flushing, at every size.

#include "bench_common.h"

int main() {
  using namespace flodb::bench;
  BenchConfig config = BenchConfig::FromEnv();
  Report report("fig16", "skewed 98/2 mixed 50r/50u, throughput vs memory size");

  const double hot_set_bytes = static_cast<double>(config.key_space) * 0.02 *
                               static_cast<double>(config.value_bytes + 40);
  printf("# hot set ~= %.0f KB; expect the FloDB takeoff above this size\n",
         hot_set_bytes / 1024);

  // One column per store plus a FloDB-nocache column: the skewed mix
  // also reads, so the block cache's share of the figure-16 takeoff is
  // visible next to the in-place-update effect.
  struct Column {
    StoreId id;
    long long cache_bytes;  // -1 = default
    std::string name;
  };
  std::vector<Column> columns;
  for (StoreId id : AllStores()) {
    columns.push_back({id, -1, StoreName(id)});
  }
  columns.push_back({StoreId::kFloDB, 0, "FloDB-nocache"});

  std::vector<std::string> header = {"memory"};
  for (const Column& column : columns) {
    header.push_back(column.name);
  }
  report.Header(header);

  const std::vector<size_t> sizes = {256u << 10, 512u << 10, 1u << 20, 2u << 20,
                                     4u << 20,   8u << 20};
  const int threads = config.threads.empty() ? 4 : config.threads.back();
  for (size_t memory : sizes) {
    char mem_label[32];
    snprintf(mem_label, sizeof(mem_label), "%zuKB", memory >> 10);
    std::vector<std::string> row = {mem_label};
    for (const Column& column : columns) {
      StoreInstance instance = OpenStore(column.id, config, memory, 1, column.cache_bytes);
      LoadRandomOrder(instance.get(), config.key_space / 2, config.key_space,
                      config.value_bytes);
      instance->FlushAll();

      WorkloadSpec workload;
      workload.get_fraction = 0.5;
      workload.put_fraction = 0.5;
      workload.key_space = config.key_space;
      workload.value_bytes = config.value_bytes;
      workload.skewed = true;
      workload.hot_key_fraction = 0.02;
      workload.hot_access_fraction = 0.98;

      DriverOptions driver;
      driver.threads = threads;
      driver.seconds = config.seconds;

      const DriverResult result = RunWorkload(instance.get(), workload, driver);
      row.push_back(Report::Fmt(result.MopsPerSec(), 3));
      report.Csv({mem_label, column.name, Report::Fmt(result.MopsPerSec(), 4)});
    }
    report.Row(row);
  }
  return 0;
}
