// Session store over FloDB — the paper's second motivating workload
// ("maintaining session states in user-facing applications", §1).
//
// A small set of hot sessions receives most updates (skewed 98/2). With
// FloDB's IN-PLACE updates, the hot set stays resident in the memory
// component instead of generating an endless stream of versions — the
// effect behind Figure 16.
//
// v2 API note: the single-key Put/Get calls below are the one-entry
// convenience wrappers over KVStore::Write/Get(ReadOptions) — the right
// shape for interactive traffic, where each session op must be
// acknowledged individually (contrast examples/message_queue.cpp, whose
// bulk producers use WriteBatch group commits).

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace {

std::string SessionKey(uint64_t user) {
  char buf[32];
  snprintf(buf, sizeof(buf), "session:%010llu", static_cast<unsigned long long>(user));
  return buf;
}

}  // namespace

int main() {
  using namespace flodb;

  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 8u << 20;
  options.disk.env = &env;
  options.disk.path = "/sessions";

  std::unique_ptr<FloDB> db;
  if (Status s = FloDB::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr uint64_t kUsers = 100'000;
  constexpr uint64_t kHotUsers = kUsers / 50;  // 2%
  constexpr int kFrontends = 4;
  constexpr int kOpsPerFrontend = 50'000;

  std::atomic<uint64_t> reads{0}, writes{0}, hits{0};
  const uint64_t start = NowNanos();
  std::vector<std::thread> frontends;
  for (int f = 0; f < kFrontends; ++f) {
    frontends.emplace_back([&, f] {
      Random64 rng(static_cast<uint64_t>(f) * 31 + 7);
      std::string state;
      char payload[160];
      for (int i = 0; i < kOpsPerFrontend; ++i) {
        // 98% of traffic goes to the hot 2% of sessions.
        const uint64_t user = rng.NextDouble() < 0.98 ? rng.Uniform(kHotUsers)
                                                      : kHotUsers + rng.Uniform(kUsers - kHotUsers);
        const std::string key = SessionKey(user);
        if (rng.OneIn(2)) {
          // Refresh session state (fixed-size => in-place in the Membuffer).
          snprintf(payload, sizeof(payload),
                   "{\"user\":%010llu,\"last_seen\":%020llu,\"cart_items\":%02d}",
                   static_cast<unsigned long long>(user),
                   static_cast<unsigned long long>(NowNanos()), i % 100);
          db->Put(Slice(key), Slice(payload));
          writes.fetch_add(1);
        } else {
          if (db->Get(Slice(key), &state).ok()) {
            hits.fetch_add(1);
          }
          reads.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : frontends) {
    t.join();
  }
  const double elapsed = SecondsSince(start);

  const StoreStats stats = db->GetStats();
  printf("session store demo (98%% of ops on 2%% of %llu sessions):\n",
         static_cast<unsigned long long>(kUsers));
  printf("  throughput  %.0f Kops/s across %d frontend threads\n",
         static_cast<double>(reads.load() + writes.load()) / elapsed / 1000, kFrontends);
  printf("  read hit rate %.1f%%\n",
         reads.load() ? 100.0 * static_cast<double>(hits.load()) /
                            static_cast<double>(reads.load())
                      : 0.0);
  printf("  in-place capture: %llu membuffer adds vs %llu memtable spills\n",
         static_cast<unsigned long long>(stats.membuffer_adds),
         static_cast<unsigned long long>(stats.memtable_direct_adds));
  printf("  disk flushes: %llu (in-place updates keep the hot set in memory)\n",
         static_cast<unsigned long long>(stats.disk.flushes));
  return 0;
}
