// Session store over a sharded FloDB — the paper's second motivating
// workload ("maintaining session states in user-facing applications",
// §1).
//
// A small set of hot sessions receives most updates (skewed 98/2). With
// FloDB's IN-PLACE updates, the hot set stays resident in the memory
// component instead of generating an endless stream of versions — the
// effect behind Figure 16. Sharding adds the scale-out dimension: every
// shard has its own Membuffer, so the hot set's update traffic spreads
// over four independent pipelines instead of hammering one hash table.
//
// Two sharding knobs are at work (DESIGN.md §8):
//  * keys keep their human-readable "session:" prefix, so
//    shard_key_prefix_skip tells the router to ignore it (otherwise
//    every key would land in one shard);
//  * user ids are Fibonacci-hashed into the routing suffix — session
//    traffic is point-get/put only, so losing range order costs nothing
//    and the hot 2% of users spreads uniformly across shards.

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/mem_env.h"

namespace {

constexpr char kKeyPrefix[] = "session:";
constexpr size_t kKeyPrefixLen = sizeof(kKeyPrefix) - 1;

std::string SessionKey(uint64_t user) {
  // Fibonacci hashing spreads consecutive user ids over the full 64-bit
  // routing domain (point lookups never need key order).
  const uint64_t spread = user * 0x9E3779B97F4A7C15ull;
  return kKeyPrefix + flodb::EncodeKey(spread);
}

}  // namespace

int main() {
  using namespace flodb;

  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 8u << 20;
  options.shards = 4;
  options.shard_key_prefix_skip = kKeyPrefixLen;  // route on the hashed suffix
  options.disk.env = &env;
  options.disk.path = "/sessions";

  std::unique_ptr<ShardedKVStore> db;
  if (Status s = ShardedKVStore::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr uint64_t kUsers = 100'000;
  constexpr uint64_t kHotUsers = kUsers / 50;  // 2%
  constexpr int kFrontends = 4;
  constexpr int kOpsPerFrontend = 50'000;

  std::atomic<uint64_t> reads{0}, writes{0}, hits{0};
  const uint64_t start = NowNanos();
  std::vector<std::thread> frontends;
  for (int f = 0; f < kFrontends; ++f) {
    frontends.emplace_back([&, f] {
      Random64 rng(static_cast<uint64_t>(f) * 31 + 7);
      std::string state;
      char payload[160];
      for (int i = 0; i < kOpsPerFrontend; ++i) {
        // 98% of traffic goes to the hot 2% of sessions.
        const uint64_t user = rng.NextDouble() < 0.98 ? rng.Uniform(kHotUsers)
                                                      : kHotUsers + rng.Uniform(kUsers - kHotUsers);
        const std::string key = SessionKey(user);
        if (rng.OneIn(2)) {
          // Refresh session state (fixed-size => in-place in the Membuffer).
          snprintf(payload, sizeof(payload),
                   "{\"user\":%010llu,\"last_seen\":%020llu,\"cart_items\":%02d}",
                   static_cast<unsigned long long>(user),
                   static_cast<unsigned long long>(NowNanos()), i % 100);
          db->Put(Slice(key), Slice(payload));
          writes.fetch_add(1);
        } else {
          if (db->Get(Slice(key), &state).ok()) {
            hits.fetch_add(1);
          }
          reads.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : frontends) {
    t.join();
  }
  const double elapsed = SecondsSince(start);

  const StoreStats stats = db->GetStats();
  printf("session store demo (98%% of ops on 2%% of %llu sessions, %d shards):\n",
         static_cast<unsigned long long>(kUsers), db->NumShards());
  printf("  throughput  %.0f Kops/s across %d frontend threads\n",
         static_cast<double>(reads.load() + writes.load()) / elapsed / 1000, kFrontends);
  printf("  read hit rate %.1f%%\n",
         reads.load() ? 100.0 * static_cast<double>(hits.load()) /
                            static_cast<double>(reads.load())
                      : 0.0);
  printf("  in-place capture: %llu membuffer adds vs %llu memtable spills\n",
         static_cast<unsigned long long>(stats.membuffer_adds),
         static_cast<unsigned long long>(stats.memtable_direct_adds));
  printf("  disk flushes: %llu (in-place updates keep the hot set in memory)\n",
         static_cast<unsigned long long>(stats.disk.flushes));
  // Hashed routing spreads even the skewed hot set evenly.
  const uint64_t total_ops = reads.load() + writes.load();
  for (int s = 0; s < db->NumShards(); ++s) {
    const StoreStats shard = db->ShardStats(s);
    printf("  shard %d handled %.1f%% of ops\n", s,
           total_ops ? 100.0 * static_cast<double>(shard.gets + shard.puts) /
                           static_cast<double>(total_ops)
                     : 0.0);
  }

  // Skewed-read phase: push everything to the disk component, then
  // replay the same 98/2 read skew against it. The hot sessions' blocks
  // are served by the shared block cache (DESIGN.md §9) instead of
  // paying an Env read + CRC per lookup — the hit rate below is the
  // cache doing the hot set's work.
  db->FlushAll();
  const StoreStats before = db->GetStats();
  const uint64_t read_start = NowNanos();
  std::vector<std::thread> readers;
  std::atomic<uint64_t> phase_reads{0};
  for (int f = 0; f < kFrontends; ++f) {
    readers.emplace_back([&, f] {
      Random64 rng(static_cast<uint64_t>(f) * 131 + 17);
      std::string state;
      for (int i = 0; i < kOpsPerFrontend / 2; ++i) {
        const uint64_t user = rng.NextDouble() < 0.98 ? rng.Uniform(kHotUsers)
                                                      : kHotUsers + rng.Uniform(kUsers - kHotUsers);
        db->Get(Slice(SessionKey(user)), &state);
        phase_reads.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) {
    t.join();
  }
  const double read_elapsed = SecondsSince(read_start);

  const StoreStats after = db->GetStats();
  const uint64_t cache_hits = after.disk.block_cache_hits - before.disk.block_cache_hits;
  const uint64_t cache_misses = after.disk.block_cache_misses - before.disk.block_cache_misses;
  printf("skewed-read phase (disk-resident, same 98/2 skew):\n");
  printf("  throughput  %.0f Kops/s across %d frontend threads\n",
         static_cast<double>(phase_reads.load()) / read_elapsed / 1000, kFrontends);
  printf("  block cache hit rate %.1f%% (%llu hits / %llu misses, %llu KB resident)\n",
         cache_hits + cache_misses
             ? 100.0 * static_cast<double>(cache_hits) /
                   static_cast<double>(cache_hits + cache_misses)
             : 0.0,
         static_cast<unsigned long long>(cache_hits),
         static_cast<unsigned long long>(cache_misses),
         static_cast<unsigned long long>(after.disk.block_cache_bytes >> 10));
  return 0;
}
