// Analytics over a live store: streaming range scans running
// concurrently with a write stream — the capability FloDB's scan
// protocol exists for (§4.4): scans proceed on the Memtable + disk
// while writers keep completing in the Membuffer.
//
// v2 API: each per-region aggregation pulls a ScanIterator instead of
// materializing the region into a vector — the aggregation runs in
// bounded memory no matter how large a region grows, and the iterator
// never blocks the ingest stream between chunks.

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/common/clock.h"
#include "flodb/common/key_codec.h"
#include "flodb/common/random.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace {

// orders:<region>:<order_id>, fixed width for byte-ordered ranges.
std::string OrderKey(int region, uint64_t id) {
  char buf[40];
  snprintf(buf, sizeof(buf), "orders:%02d:%012llu", region,
           static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

int main() {
  using namespace flodb;

  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 8u << 20;
  options.disk.env = &env;
  options.disk.path = "/orders";

  std::unique_ptr<FloDB> db;
  if (Status s = FloDB::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr int kRegions = 8;
  constexpr uint64_t kInitialOrders = 5000;

  // Backfill: existing orders per region, amounts encoded in the value.
  for (int region = 0; region < kRegions; ++region) {
    for (uint64_t id = 0; id < kInitialOrders; ++id) {
      char value[64];
      const int amount = static_cast<int>((id * 7 + static_cast<uint64_t>(region)) % 500) + 1;
      snprintf(value, sizeof(value), "amount=%d", amount);
      db->Put(Slice(OrderKey(region, id)), Slice(value));
    }
  }
  db->FlushAll();

  // Live traffic: new orders keep arriving while analytics runs.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> new_orders{0};
  std::thread ingest([&] {
    Random64 rng(42);
    uint64_t id = kInitialOrders;
    while (!stop.load()) {
      const int region = static_cast<int>(rng.Uniform(kRegions));
      char value[64];
      snprintf(value, sizeof(value), "amount=%d", static_cast<int>(rng.Uniform(500)) + 1);
      db->Put(Slice(OrderKey(region, id++)), Slice(value));
      new_orders.fetch_add(1);
    }
  });

  // Analytics: per-region revenue streamed through ScanIterators — the
  // aggregation touches every row exactly once without ever holding more
  // than one chunk in memory.
  printf("per-region revenue (streaming scans against live writes):\n");
  uint64_t total_rows = 0;
  size_t max_buffered = 0;
  const uint64_t start = NowNanos();
  for (int region = 0; region < kRegions; ++region) {
    const std::string low = OrderKey(region, 0);
    const std::string high = OrderKey(region + 1, 0);
    ReadOptions ropts;
    ropts.scan_chunk_size = 512;
    auto it = db->NewScanIterator(ropts, Slice(low), Slice(high));
    uint64_t revenue = 0;
    size_t rows = 0;
    for (; it->Valid(); it->Next()) {
      int amount = 0;
      sscanf(it->value().ToString().c_str(), "amount=%d", &amount);
      revenue += static_cast<uint64_t>(amount);
      ++rows;
    }
    if (!it->status().ok()) {
      fprintf(stderr, "scan failed: %s\n", it->status().ToString().c_str());
      return 1;
    }
    if (it->MaxBufferedEntries() > max_buffered) {
      max_buffered = it->MaxBufferedEntries();
    }
    total_rows += rows;
    printf("  region %02d: %6zu orders, revenue %8llu\n", region, rows,
           static_cast<unsigned long long>(revenue));
  }
  const double elapsed = SecondsSince(start);
  stop.store(true);
  ingest.join();

  const StoreStats stats = db->GetStats();
  printf("\nstreamed %llu rows in %.2fs while %llu new orders arrived\n",
         static_cast<unsigned long long>(total_rows), elapsed,
         static_cast<unsigned long long>(new_orders.load()));
  printf("peak iterator buffer: %zu entries (chunked streaming, not materialized)\n",
         max_buffered);
  printf("scan machinery: %llu iterators, %llu master, %llu piggybacked, %llu restarts, "
         "%llu fallbacks\n",
         static_cast<unsigned long long>(stats.iterator_scans),
         static_cast<unsigned long long>(stats.master_scans),
         static_cast<unsigned long long>(stats.piggyback_scans),
         static_cast<unsigned long long>(stats.scan_restarts),
         static_cast<unsigned long long>(stats.fallback_scans));
  return 0;
}
