// Quickstart: open a FloDB store on real files, write (single keys and
// an atomic WriteBatch), read, scan (materialized and streaming),
// delete, flush, and inspect the stats. This is the minimal end-to-end
// tour of the v2 public API.

#include <cstdio>
#include <memory>

#include "flodb/core/flodb.h"
#include "flodb/disk/env.h"

int main(int argc, char** argv) {
  using namespace flodb;

  // 1. Configure: 16MB memory budget (4MB Membuffer + 12MB Memtable),
  //    real files under /tmp (or a directory given as argv[1]).
  FloDbOptions options;
  options.memory_budget_bytes = 16u << 20;
  options.disk.env = GetPosixEnv();
  options.disk.path = argc > 1 ? argv[1] : "/tmp/flodb_quickstart";
  options.enable_wal = true;  // survive crashes

  std::unique_ptr<FloDB> db;
  Status status = FloDB::Open(options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Write some data. Keys and values are arbitrary byte strings.
  for (int i = 0; i < 1000; ++i) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user:%04d", i);
    snprintf(value, sizeof(value), "profile-%d", i);
    status = db->Put(Slice(key), Slice(value));
    if (!status.ok()) {
      fprintf(stderr, "put failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // 3. Batched write: all entries commit as one unit — one WAL record,
  //    recovered all-or-nothing after a crash. WriteOptions{.sync=true}
  //    would fsync once for the whole batch (group commit).
  WriteBatch batch;
  batch.Put(Slice("config:theme"), Slice("dark"));
  batch.Put(Slice("config:lang"), Slice("en"));
  batch.Delete(Slice("config:beta"));
  status = db->Write(WriteOptions(), &batch);
  if (!status.ok()) {
    fprintf(stderr, "batch write failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. Point lookup.
  std::string value;
  status = db->Get(Slice("user:0042"), &value);
  printf("Get(user:0042)  -> %s\n", status.ok() ? value.c_str() : status.ToString().c_str());

  // 5. Delete, then observe the miss.
  db->Delete(Slice("user:0042"));
  status = db->Get(Slice("user:0042"), &value);
  printf("after Delete    -> %s\n", status.ToString().c_str());

  // 6. Range scan: all users in [user:0100, user:0110).
  std::vector<std::pair<std::string, std::string>> results;
  status = db->Scan(Slice("user:0100"), Slice("user:0110"), 0, &results);
  printf("Scan [0100,0110) -> %zu entries:\n", results.size());
  for (const auto& [k, v] : results) {
    printf("  %s = %s\n", k.c_str(), v.c_str());
  }

  // 7. Streaming scan: iterate a range in bounded memory — the way to
  //    read ranges that may not fit in RAM.
  size_t streamed = 0;
  auto it = db->NewScanIterator(ReadOptions(), Slice("user:"), Slice("user;"));
  for (; it->Valid(); it->Next()) {
    ++streamed;
  }
  printf("Iterator over all users -> %zu entries (peak buffer %zu)\n", streamed,
         it->MaxBufferedEntries());

  // 8. Force everything to disk and print the stats.
  db->FlushAll();
  const StoreStats stats = db->GetStats();
  printf("\nstats: puts=%llu gets=%llu scans=%llu\n",
         static_cast<unsigned long long>(stats.puts),
         static_cast<unsigned long long>(stats.gets),
         static_cast<unsigned long long>(stats.scans));
  printf("       membuffer_adds=%llu memtable_direct=%llu drained=%llu\n",
         static_cast<unsigned long long>(stats.membuffer_adds),
         static_cast<unsigned long long>(stats.memtable_direct_adds),
         static_cast<unsigned long long>(stats.drained_entries));
  printf("       disk flushes=%llu compactions=%llu\n",
         static_cast<unsigned long long>(stats.disk.flushes),
         static_cast<unsigned long long>(stats.disk.compactions));
  printf("\nOK — data persisted under %s\n", options.disk.path.c_str());
  return 0;
}
