// Message queue over a sharded FloDB — the paper's motivating
// write-heavy workload ("message queues that undergo a high number of
// updates", §1), on the v2 batch API, scaled out across range
// partitions (DESIGN.md §8).
//
// The queue is split into kPartitions partitions (as in Kafka): each
// message key leads with a partition tag byte chosen so the partitions
// spread evenly over ShardedKVStore's range shards, giving every
// partition its own Membuffer/Memtable/WAL/drain pipeline. Producers
// round-robin partitions inside one WriteBatch per 64 messages, so a
// single group commit fans out into one per-shard commit per touched
// shard. The consumer drains the WHOLE queue with one range scan — the
// k-way merged iterator interleaves the per-shard streams back into
// global (partition, seq) key order — and acknowledges each scanned
// batch with a single cross-shard batch of tombstones.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/common/clock.h"
#include "flodb/core/sharded_store.h"
#include "flodb/disk/mem_env.h"

namespace {

constexpr int kPartitions = 4;

// Partition tag byte: partitions uniformly spaced over the byte range,
// so with shards <= kPartitions every shard owns whole partitions. A raw
// (non-printable) byte is fine — FloDB keys are arbitrary bytes.
char PartitionTag(int partition) {
  return static_cast<char>((partition * 256) / kPartitions);
}

std::string MessageKey(int partition, uint64_t seq) {
  // Tag + fixed-width zero-padded seq: byte order == (partition, seq).
  // Length-explicit construction: partition 0's tag is a NUL byte, which
  // would truncate a C-string conversion.
  char buf[32];
  const int len = snprintf(buf, sizeof(buf), "%cevt:%012" PRIu64, PartitionTag(partition), seq);
  return std::string(buf, static_cast<size_t>(len));
}

}  // namespace

int main() {
  using namespace flodb;

  // In-memory Env keeps the example self-contained; swap in GetPosixEnv()
  // and a real path for durability.
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 8u << 20;
  options.shards = 4;  // one independent FloDB pipeline per keyspace quarter
  options.disk.env = &env;
  options.disk.path = "/queue";

  std::unique_ptr<ShardedKVStore> db;
  if (Status s = ShardedKVStore::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr int kProducers = 3;
  constexpr uint64_t kMessagesPerProducer = 20'000;
  constexpr size_t kProducerBatch = 64;
  std::atomic<uint64_t> next_seq{0};
  std::atomic<uint64_t> produced{0};

  const uint64_t start = NowNanos();
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      char payload[128];
      WriteBatch batch;
      for (uint64_t i = 0; i < kMessagesPerProducer; ++i) {
        const uint64_t seq = next_seq.fetch_add(1);
        // Round-robin partitions: one producer batch straddles shards and
        // is split into one group commit per touched shard.
        const int partition = static_cast<int>(seq % kPartitions);
        const int len = snprintf(payload, sizeof(payload),
                                 "{\"producer\":%d,\"n\":%llu,\"body\":\"event-payload\"}", p,
                                 static_cast<unsigned long long>(i));
        batch.Put(Slice(MessageKey(partition, seq)), Slice(payload, static_cast<size_t>(len)));
        if (batch.Count() >= kProducerBatch || i + 1 == kMessagesPerProducer) {
          db->Write(WriteOptions(), &batch);
          produced.fetch_add(batch.Count());
          batch.Clear();
        }
      }
    });
  }

  // Consumer: drains batches of 500 messages across ALL partitions while
  // producers run. The full-range scan runs on the merged per-shard
  // iterators; consumed messages are deleted (a cross-shard tombstone
  // batch), so each partition's head advances naturally, and in-flight
  // messages with smaller sequence numbers (producers race on the
  // counter) are picked up by a later pass instead of being skipped.
  std::atomic<bool> producers_done{false};
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    std::vector<std::pair<std::string, std::string>> batch;
    while (true) {
      // Sample the flag BEFORE scanning: an empty scan only proves the
      // queue is drained if no producer was active when the scan began.
      const bool done_before_scan = producers_done.load();
      const Status s = db->Scan(Slice(MessageKey(0, 0)), Slice(), 500, &batch);
      if (!s.ok()) {
        fprintf(stderr, "scan failed: %s\n", s.ToString().c_str());
        return;
      }
      if (batch.empty()) {
        if (done_before_scan) {
          return;
        }
        std::this_thread::yield();
        continue;
      }
      // Ack the whole scanned batch with one call; the splitter turns it
      // into one atomic-recovery commit per touched shard.
      WriteBatch acks;
      for (const auto& [key, payload] : batch) {
        acks.Delete(Slice(key));
      }
      db->Write(WriteOptions(), &acks);
      consumed.fetch_add(batch.size());
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  producers_done.store(true);
  consumer.join();
  const double elapsed = SecondsSince(start);

  printf("message queue demo (%d partitions over %d shards):\n", kPartitions, db->NumShards());
  printf("  produced   %llu messages with %d producers\n",
         static_cast<unsigned long long>(produced.load()), kProducers);
  printf("  consumed   %llu messages in (partition, seq) order\n",
         static_cast<unsigned long long>(consumed.load()));
  printf("  elapsed    %.2f s  (%.0f Kmsg/s end-to-end)\n", elapsed,
         static_cast<double>(produced.load() + consumed.load()) / elapsed / 1000);

  const StoreStats stats = db->GetStats();
  printf("  group commit: %.1f entries per batch on average\n",
         stats.batch_writes > 0
             ? static_cast<double>(stats.batch_entries) / static_cast<double>(stats.batch_writes)
             : 0.0);
  printf("  cross-shard commits: %llu (round-robin batches straddle shards by design)\n",
         static_cast<unsigned long long>(db->CrossShardWrites()));
  printf("  membuffer absorbed %.1f%% of writes\n",
         100.0 * static_cast<double>(stats.membuffer_adds) /
             static_cast<double>(stats.membuffer_adds + stats.memtable_direct_adds));
  // Merged scans surface as one per-shard iterator stream per consulted
  // shard (DESIGN.md §8 stats accounting).
  printf("  per-shard scan streams=%llu (restarts=%llu, fallbacks=%llu)\n",
         static_cast<unsigned long long>(stats.iterator_scans),
         static_cast<unsigned long long>(stats.scan_restarts),
         static_cast<unsigned long long>(stats.fallback_scans));
  for (int s = 0; s < db->NumShards(); ++s) {
    const StoreStats shard = db->ShardStats(s);
    printf("  shard %d: %llu writes committed in %llu per-shard group commits\n", s,
           static_cast<unsigned long long>(shard.batch_entries),
           static_cast<unsigned long long>(shard.batch_writes));
  }
  return consumed.load() == produced.load() ? 0 : 1;
}
