// Message queue over FloDB — the paper's motivating write-heavy workload
// ("message queues that undergo a high number of updates", §1), on the
// v2 batch API.
//
// Multiple producers append messages under sequenced keys
// (queue:<topic>:<seq>), committing one WriteBatch per 64 messages —
// one WAL record and one memory-component pass per commit instead of
// per message. A consumer drains them with range scans and acknowledges
// each scanned batch with a single batched Write of tombstones. The
// write burst is absorbed by the Membuffer while the background threads
// stream it down to disk.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "flodb/common/clock.h"
#include "flodb/core/flodb.h"
#include "flodb/disk/mem_env.h"

namespace {

std::string MessageKey(uint64_t seq) {
  // Fixed-width, zero-padded so byte order == numeric order.
  char buf[32];
  snprintf(buf, sizeof(buf), "queue:events:%012" PRIu64, seq);
  return buf;
}

}  // namespace

int main() {
  using namespace flodb;

  // In-memory Env keeps the example self-contained; swap in GetPosixEnv()
  // and a real path for durability.
  MemEnv env;
  FloDbOptions options;
  options.memory_budget_bytes = 8u << 20;
  options.disk.env = &env;
  options.disk.path = "/queue";

  std::unique_ptr<FloDB> db;
  if (Status s = FloDB::Open(options, &db); !s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  constexpr int kProducers = 3;
  constexpr uint64_t kMessagesPerProducer = 20'000;
  constexpr size_t kProducerBatch = 64;
  std::atomic<uint64_t> next_seq{0};
  std::atomic<uint64_t> produced{0};

  const uint64_t start = NowNanos();
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      char payload[128];
      WriteBatch batch;
      for (uint64_t i = 0; i < kMessagesPerProducer; ++i) {
        const uint64_t seq = next_seq.fetch_add(1);
        const int len = snprintf(payload, sizeof(payload),
                                 "{\"producer\":%d,\"n\":%llu,\"body\":\"event-payload\"}", p,
                                 static_cast<unsigned long long>(i));
        batch.Put(Slice(MessageKey(seq)), Slice(payload, static_cast<size_t>(len)));
        if (batch.Count() >= kProducerBatch || i + 1 == kMessagesPerProducer) {
          // One group commit for the whole batch: one WAL record, one
          // pass through the Membuffer.
          db->Write(WriteOptions(), &batch);
          produced.fetch_add(batch.Count());
          batch.Clear();
        }
      }
    });
  }

  // Consumer: drains batches of 500 messages in key order while producers
  // run. Each pass scans from the queue head — consumed messages are
  // deleted, so the head advances naturally, and in-flight messages with
  // smaller sequence numbers (producers race on the counter) are picked
  // up by a later pass instead of being skipped.
  std::atomic<bool> producers_done{false};
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    std::vector<std::pair<std::string, std::string>> batch;
    while (true) {
      // Sample the flag BEFORE scanning: an empty scan only proves the
      // queue is drained if no producer was active when the scan began.
      const bool done_before_scan = producers_done.load();
      const Status s = db->Scan(Slice(MessageKey(0)), Slice(), 500, &batch);
      if (!s.ok()) {
        fprintf(stderr, "scan failed: %s\n", s.ToString().c_str());
        return;
      }
      if (batch.empty()) {
        if (done_before_scan) {
          return;
        }
        std::this_thread::yield();
        continue;
      }
      // Ack the whole scanned batch with one atomic-recovery commit.
      WriteBatch acks;
      for (const auto& [key, payload] : batch) {
        acks.Delete(Slice(key));
      }
      db->Write(WriteOptions(), &acks);
      consumed.fetch_add(batch.size());
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  producers_done.store(true);
  consumer.join();
  const double elapsed = SecondsSince(start);

  printf("message queue demo:\n");
  printf("  produced   %llu messages with %d producers\n",
         static_cast<unsigned long long>(produced.load()), kProducers);
  printf("  consumed   %llu messages in order\n",
         static_cast<unsigned long long>(consumed.load()));
  printf("  elapsed    %.2f s  (%.0f Kmsg/s end-to-end)\n", elapsed,
         static_cast<double>(produced.load() + consumed.load()) / elapsed / 1000);

  const StoreStats stats = db->GetStats();
  printf("  group commit: %.1f entries per batch on average\n",
         stats.batch_writes > 0
             ? static_cast<double>(stats.batch_entries) / static_cast<double>(stats.batch_writes)
             : 0.0);
  printf("  membuffer absorbed %.1f%% of writes\n",
         100.0 * static_cast<double>(stats.membuffer_adds) /
             static_cast<double>(stats.membuffer_adds + stats.memtable_direct_adds));
  printf("  scans=%llu (restarts=%llu, fallbacks=%llu)\n",
         static_cast<unsigned long long>(stats.scans),
         static_cast<unsigned long long>(stats.scan_restarts),
         static_cast<unsigned long long>(stats.fallback_scans));
  return consumed.load() == produced.load() ? 0 : 1;
}
